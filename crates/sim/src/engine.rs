//! The synchronous round engine: sharded parallel compute *and* delivery.
//!
//! Each [`Simulator::step`] runs three phases over a fixed
//! [`ShardPlan`] — every shard owns a contiguous vertex range, the outboxes
//! and inbox slice of those vertices, and the CONGEST counters of the
//! directed-edge slots leaving them (see the [`crate::shard`] module docs
//! for the full ownership invariant):
//!
//! 1. **Compute** — every node consumes its delivered messages and fills
//!    its preallocated [`Outbox`]. A shard computes only its own nodes and
//!    writes only its own outbox chunk.
//! 2. **Account** (sender side) — each shard validates addressing,
//!    charges per-edge byte budgets for the messages *its own* vertices
//!    sent, and builds its sender-side routing index: outgoing message
//!    refs bucketed by destination shard (unicasts through a flat O(1)
//!    vertex→shard table, broadcasts through the [`RouteIndex`]'s
//!    precomputed adjacency segmentation). Edge slots are sender-owned
//!    and contiguous per shard, so there is no counter merge.
//! 3. **Place** (recipient side) — each shard walks only the route-ref
//!    buckets addressed to it and bucket-sorts those copies (unicast,
//!    multicast, and broadcast alike) into its own CSR inbox slice. No
//!    shard rescans another shard's outbox headers, so total header work
//!    drops from `O(shards × messages)` to `O(messages + copies)` refs
//!    (no shard-count multiplier); see the [`crate::shard`] module docs
//!    for the complexity table and [`Simulator::delivery_work`] for the
//!    measured counters.
//!
//! Under [`Engine::Framed`] the hand-off between phases 2 and 3 crosses
//! the **frame seam** instead of shared memory: an extra **ship** phase
//! serializes each shard's buckets (refs + payload bytes, both read only
//! from the shard's own state) into one self-delimiting, checksummed
//! frame per destination shard and hands them to a
//! [`crate::frame::Transport`] — in-memory loopback or per-shard channel
//! mailboxes — and the place phase decodes the frames addressed to it,
//! touching no other shard's memory at all. Refs arrive in the same
//! (sender shard, bucket) order either way, so results stay bit-identical
//! across all backends; a frame that fails validation surfaces as a typed
//! [`SimError::Frame`]. The `NETDECOMP_BACKEND` environment variable
//! reroutes [`Engine::Parallel`] through the seam for CI sweeps.
//!
//! # Round schedules
//!
//! Under [`Engine::Parallel`] and [`Engine::Framed`] all phases run on
//! all shards concurrently inside a **single**
//! [`rayon::ThreadPool::broadcast`] per step, with a barrier between
//! phases — one scoped thread set per round, not one per phase. Only the
//! per-shard [`RoundStats`] are merged at the end. [`Engine::Sequential`]
//! (and a parallelism of one) runs the same phases inline with zero spawn
//! overhead.
//!
//! Framed engines default to the **overlapped** schedule, which fuses
//! encode+ship into the compute/account pass so a shard's frames are on
//! the transport while other shards are still computing, and the round
//! needs one barrier instead of three:
//!
//! ```text
//! non-overlapped (with_overlap(false)):
//!   [compute all] ─barrier─ [account all] ─barrier─ [ship all] ─barrier─ [place all]
//!
//! overlapped (default):
//!   per owned shard: [compute → account → ship]  ─barrier─  [place all]
//!                     └ shard A ships while B computes ┘      └ ship barrier,
//!                                                               now before place ┘
//! ```
//!
//! The fusion is safe because every pre-place phase touches only the
//! shard's own state (compute its own inboxes/outboxes, account its own
//! edge counters and router, ship its own buckets): the only cross-shard
//! hand-off is the transport itself, and the single barrier still
//! guarantees every send lands before any collect. Delivery order — and
//! therefore every result bit — is unchanged; [`Determinism::Verify`]
//! still cross-checks each round against the sequential reference. On an
//! account failure the fused pass *still ships* (the partial bucket holds
//! only validated, charged refs), keeping the transport balanced at one
//! frame per `(sender, dest)` pair, and after the barrier every shard
//! drains its incoming frames undecoded instead of placing — so the
//! error round leaves the same state as the non-overlapped abort. Toggle
//! with [`Simulator::with_overlap`] or `NETDECOMP_FRAME_OVERLAP=0`.
//!
//! Because each shard scans senders in id order, per-recipient delivery
//! order is (sender id, send order, adjacency order for broadcasts) —
//! independent of both thread scheduling and the shard count, so results
//! are bit-identical across every `(threads, shards)` configuration for
//! any deterministic protocol. [`Determinism::Verify`] checks this per
//! round against a sequential reference for *both* phases: reference
//! compute on cloned nodes, and a reference single-buffer merge
//! cross-checked against the sharded delivery.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, RwLock};

use bytes::Bytes;
use netdecomp_graph::{Graph, VertexId};

use crate::frame::{
    ChannelTransport, FrameConfig, FrameEncoder, FrameTransport, LoopbackTransport, Transport,
};
use crate::message::InboxSlot;
use crate::shard::{DeliveryShard, RouteIndex, Router, ShardPlan};
use crate::{
    CongestLimit, DeliveryWork, Inbox, Incoming, Outbox, Recipient, RoundStats, RunStats, SimError,
};

/// Read-only view a node gets of its place in the network.
///
/// A node knows its own id, its degree, and the ids of its neighbors —
/// nothing else about the topology, matching the initial knowledge of the
/// distributed model.
#[derive(Debug)]
pub struct Ctx<'a> {
    /// This node's vertex id.
    pub id: VertexId,
    /// Total number of nodes `n` (the model assumes `n`, or an upper bound
    /// on it, is global knowledge).
    pub n: usize,
    graph: &'a Graph,
}

impl<'a> Ctx<'a> {
    /// Node context for drivers outside this module (the single-shard
    /// [`crate::transport::worker`] builds nodes for its vertex range).
    pub(crate) fn new(id: VertexId, n: usize, graph: &'a Graph) -> Ctx<'a> {
        Ctx { id, n, graph }
    }

    /// The ids of this node's neighbors.
    #[must_use]
    pub fn neighbors(&self) -> &[VertexId] {
        self.graph.neighbors(self.id)
    }

    /// This node's degree.
    #[must_use]
    pub fn degree(&self) -> usize {
        self.graph.degree(self.id)
    }
}

/// A per-node state machine executed by the [`Simulator`].
///
/// The engine drives each node through `start` (round 0, before any message
/// is delivered) and then `round` once per subsequent round with the messages
/// sent to it in the previous round. Outgoing messages go into the node's
/// preallocated [`Outbox`].
///
/// Implementations must be deterministic functions of `(state, incoming)`:
/// the compute phase may run nodes on any thread in any order within a
/// round. [`Determinism::Verify`] can check this at runtime.
pub trait Protocol {
    /// Called once at round 0; queues the node's initial messages.
    fn start(&mut self, ctx: &Ctx<'_>, out: &mut Outbox);

    /// Called every round ≥ 1 with the messages delivered this round.
    /// Messages arrive ordered by sender id (ties: sender's send order).
    ///
    /// `incoming` is a zero-copy [`Inbox`] view over the owning shard's
    /// compact slot table and payload slab: iterating it touches no
    /// reference counts, and a broadcast's recipients all read the same
    /// slab entry. Call [`crate::IncomingRef::to_incoming`] when an owned
    /// [`Incoming`] is genuinely needed.
    fn round(&mut self, ctx: &Ctx<'_>, incoming: Inbox<'_>, out: &mut Outbox);

    /// `true` once this node has locally terminated. A halted node still
    /// receives messages (and may un-halt by returning messages again).
    fn is_halted(&self) -> bool {
        false
    }
}

/// Checkpointable per-node state: the seam the deterministic
/// checkpoint/restore plane rides on.
///
/// A protocol opts in by serializing its *mutable* state — everything
/// `start`/`round` can change — through the same wire primitives its
/// messages use ([`crate::WireWriter`] / [`crate::WireReader`]).
/// Configuration fixed at construction (caps, modes, ids) need not be
/// saved: restore always runs on a node freshly built by the same
/// `make_node` closure, so [`Snapshot::load_state`] only overlays the
/// evolving fields.
///
/// The contract mirrors the engine's determinism invariant: for any
/// node, `load_state(save_state())` must reproduce a state that behaves
/// bit-identically from that round on. `load_state` must treat its
/// input as untrusted bytes (checkpoint files are validated by digest,
/// but defense in depth is cheap) and return `false` rather than panic
/// on malformed input.
pub trait Snapshot {
    /// Serializes this node's mutable state.
    fn save_state(&self) -> Bytes;

    /// Overlays previously saved state onto this freshly built node.
    /// Returns `false` (leaving the node in an unspecified but safe
    /// state) when the bytes are malformed.
    fn load_state(&mut self, bytes: &[u8]) -> bool;
}

/// How rounds are scheduled across threads and shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// One shard, one thread: every phase runs in id order on the calling
    /// thread with no scheduling overhead at all.
    #[default]
    Sequential,
    /// Vertices are split into `shards` contiguous recipient ranges and
    /// every phase (compute, CONGEST accounting, *and* delivery placement)
    /// runs per shard across `threads` workers. Results are bit-identical
    /// to [`Engine::Sequential`] for any deterministic protocol, for every
    /// `(threads, shards)` combination.
    Parallel {
        /// Worker thread count; `0` picks the machine's parallelism.
        threads: usize,
        /// Shard count; `0` reads the `NETDECOMP_SHARDS` environment
        /// variable and falls back to the resolved thread count. Clamped
        /// to `1..=n` at simulator construction.
        shards: usize,
    },
    /// Like [`Engine::Parallel`], but delivery crosses shard boundaries
    /// only as encoded bucket frames shipped through a
    /// [`crate::frame::Transport`]: each shard serializes its router
    /// buckets (refs *and* payload bytes) into one self-delimiting frame
    /// per destination shard, and the place phase decodes frames instead
    /// of reading other shards' memory. Results remain bit-identical to
    /// [`Engine::Sequential`] — [`Determinism::Verify`] cross-checks this
    /// round by round — while a corrupted frame surfaces as a typed
    /// [`SimError::Frame`].
    Framed {
        /// Worker thread count; `0` picks the machine's parallelism.
        threads: usize,
        /// Shard count; `0` reads `NETDECOMP_SHARDS` as in
        /// [`Engine::Parallel`].
        shards: usize,
        /// Which transport ships the frames (in-memory loopback or
        /// per-shard channels).
        transport: FrameTransport,
    },
}

/// Shard count requested through the environment (`NETDECOMP_SHARDS`).
fn env_shards() -> Option<usize> {
    let raw = std::env::var("NETDECOMP_SHARDS").ok()?;
    raw.trim().parse().ok().filter(|&s| s > 0)
}

/// Delivery backend requested through the environment
/// (`NETDECOMP_BACKEND`): `framed` / `loopback` select the framed
/// loopback transport, `channel` / `framed-channel` the channel
/// transport, `socket` / `framed-socket` / `unix` the real-socket
/// transport; anything else (or unset) keeps shared-memory delivery.
/// Consulted only by [`Engine::Parallel`], so CI can sweep every
/// `Parallel`-built simulator through the frame seam without code
/// changes (mirroring how `NETDECOMP_SHARDS` reaches `shards: 0`).
fn env_backend() -> Option<FrameTransport> {
    let raw = std::env::var("NETDECOMP_BACKEND").ok()?;
    match raw.trim().to_ascii_lowercase().as_str() {
        "framed" | "loopback" | "framed-loopback" => Some(FrameTransport::Loopback),
        "channel" | "framed-channel" => Some(FrameTransport::Channel),
        "socket" | "framed-socket" | "unix" => Some(FrameTransport::Socket),
        _ => None,
    }
}

/// Whether framed engines fuse encode+ship into the compute/account pass
/// (`NETDECOMP_FRAME_OVERLAP`): on unless set to `0` or `off`. Read at
/// engine construction, overridable per simulator with
/// [`Simulator::with_overlap`].
fn env_overlap() -> bool {
    std::env::var("NETDECOMP_FRAME_OVERLAP")
        .map(|v| {
            let v = v.trim();
            v != "0" && !v.eq_ignore_ascii_case("off")
        })
        .unwrap_or(true)
}

impl Engine {
    /// Resolves the configuration to concrete `(threads, shards, backend)`
    /// settings, where a `Some` backend means framed delivery.
    fn resolve(self) -> (usize, usize, Option<FrameTransport>) {
        let counts = |threads: usize, shards: usize| {
            let threads = if threads == 0 {
                rayon::current_num_threads()
            } else {
                threads
            };
            let shards = if shards == 0 {
                env_shards().unwrap_or(threads)
            } else {
                shards
            };
            (threads, shards)
        };
        match self {
            Engine::Sequential => (1, 1, None),
            Engine::Parallel { threads, shards } => {
                let (threads, shards) = counts(threads, shards);
                (threads, shards, env_backend())
            }
            Engine::Framed {
                threads,
                shards,
                transport,
            } => {
                let (threads, shards) = counts(threads, shards);
                (threads, shards, Some(transport))
            }
        }
    }
}

/// Whether to double-check sharded parallel rounds against a sequential
/// reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Determinism {
    /// Trust the protocol to be deterministic (no overhead).
    #[default]
    Trust,
    /// Re-run each round sequentially — compute on cloned nodes, delivery
    /// as a single-buffer reference merge — and require bit-identical
    /// outboxes *and* inboxes ([`SimError::Nondeterminism`] otherwise).
    /// Roughly doubles round cost; meant for tests.
    Verify,
}

/// A phase barrier that *poisons* instead of deadlocking: if any worker
/// panics between phases (its [`PoisonOnPanic`] guard fires during
/// unwinding), every other worker blocked here panics out too, so the
/// scoped thread set joins and the original panic propagates — matching
/// the panic behavior of an unsharded round.
struct PhaseBarrier {
    members: usize,
    state: Mutex<PhaseBarrierState>,
    cv: Condvar,
}

struct PhaseBarrierState {
    generation: u64,
    waiting: usize,
    poisoned: bool,
}

impl PhaseBarrier {
    fn new(members: usize) -> Self {
        PhaseBarrier {
            members,
            state: Mutex::new(PhaseBarrierState {
                generation: 0,
                waiting: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Blocks until all members arrive (or any member poisons the
    /// barrier, which panics every waiter).
    fn wait(&self) {
        let mut state = self.state.lock().expect("phase barrier lock");
        assert!(!state.poisoned, "a worker panicked during a sharded round");
        state.waiting += 1;
        if state.waiting == self.members {
            state.waiting = 0;
            state.generation += 1;
            self.cv.notify_all();
            return;
        }
        let generation = state.generation;
        while state.generation == generation && !state.poisoned {
            state = self.cv.wait(state).expect("phase barrier lock");
        }
        let poisoned = state.poisoned;
        drop(state);
        assert!(!poisoned, "a worker panicked during a sharded round");
    }

    fn poison(&self) {
        let mut state = match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        state.poisoned = true;
        self.cv.notify_all();
    }
}

/// Arms a worker so that unwinding (a protocol panic) releases everyone
/// else from the barrier before the panic leaves the broadcast closure.
struct PoisonOnPanic<'a>(&'a PhaseBarrier);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// One shard's share of a round: its delivery state plus the node states
/// of its vertex range.
struct ShardSlot<'a, P> {
    /// Global shard index (also indexes the outbox chunk array).
    index: usize,
    shard: &'a mut DeliveryShard,
    nodes: &'a mut [P],
}

/// The contiguous group of shards one broadcast worker executes.
struct WorkerTask<'a, P> {
    slots: Vec<ShardSlot<'a, P>>,
}

/// Waits at `barrier`, measuring the blocked time once per worker and
/// attributing it to every shard the worker drives (a worker arrives at
/// a barrier once, however many shards it owns). Reads no clock at all
/// when tracing is off.
fn timed_barrier_wait<P>(barrier: &PhaseBarrier, task: &mut WorkerTask<'_, P>) {
    let t = task.slots.first().and_then(|s| s.shard.trace.begin());
    barrier.wait();
    if let Some(t) = t {
        let ns = u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
        for slot in task.slots.iter_mut() {
            slot.shard.trace.note_barrier_ns(ns);
        }
    }
}

/// Synchronous simulator executing one [`Protocol`] instance per vertex.
///
/// See the crate-level documentation for a complete example.
#[derive(Debug)]
pub struct Simulator<'g, P> {
    graph: &'g Graph,
    nodes: Vec<P>,
    /// The recipient-range partition driving both phases.
    plan: ShardPlan,
    /// Precomputed routing tables (vertex→shard, per-vertex adjacency
    /// segmentation) for the current plan; rebuilt only on reshard.
    routes: RouteIndex,
    /// Preallocated outboxes, chunked by shard. Written only by the owning
    /// shard (compute), read by all shards after a barrier (delivery).
    outboxes: Vec<RwLock<Vec<Outbox>>>,
    /// Per-shard sender-side routers. Written only by the owning shard
    /// (account), read per-bucket by destination shards after a barrier
    /// (placement) — or, under a framed backend, read only by the owning
    /// shard's frame encoder.
    routers: Vec<RwLock<Router>>,
    /// Per-shard delivery state (inbox slice, counters, stats).
    shards: Vec<DeliveryShard>,
    /// Framed backends: per-shard frame encoders (sender-side buffer
    /// recycle rings), written only by the owning shard.
    encoders: Vec<RwLock<FrameEncoder>>,
    /// Framed backends: the fabric moving encoded frames between shards.
    transport: Option<Box<dyn Transport>>,
    /// `Some` when delivery runs through the frame seam.
    backend: Option<FrameTransport>,
    /// Framed backends: the wire format the encoders write.
    frame_config: FrameConfig,
    /// Framed backends: fuse encode+ship into the compute/account pass
    /// (one barrier per round) instead of running a dedicated ship phase.
    overlap: bool,
    limit: CongestLimit,
    engine: Engine,
    /// Concurrent workers a step uses: `min(threads, shards)`.
    workers: usize,
    /// Worker pool backing parallel steps, built once in
    /// [`Simulator::with_engine`]; one `broadcast` (one scoped thread set)
    /// per step.
    pool: Option<rayon::ThreadPool>,
    stats: RunStats,
    round: usize,
    started: bool,
}

/// Runs the compute phase for one shard's vertex range: each node consumes
/// its slice of the shard-owned inbox and refills its preallocated outbox.
/// (Also the compute phase of the single-shard
/// [`crate::transport::worker`] driver.)
pub(crate) fn compute_shard<P: Protocol>(
    graph: &Graph,
    started: bool,
    shard: &DeliveryShard,
    nodes: &mut [P],
    outboxes: &mut [Outbox],
) {
    let n = graph.vertex_count();
    for (i, (node, out)) in nodes.iter_mut().zip(outboxes.iter_mut()).enumerate() {
        let id = shard.start() + i;
        out.clear();
        let ctx = Ctx { id, n, graph };
        if started {
            node.round(&ctx, shard.incoming(i), out);
        } else {
            node.start(&ctx, out);
        }
    }
}

/// The sequential single-buffer merge, kept as the reference
/// implementation [`Determinism::Verify`] cross-checks sharded delivery
/// against: one global CSR inbox built in two passes over all outboxes in
/// sender-id order, with flat per-edge-slot accounting.
fn deliver_reference(
    graph: &Graph,
    limit: CongestLimit,
    round: usize,
    outboxes: &[Outbox],
) -> Result<(Vec<usize>, Vec<Incoming>, RoundStats), SimError> {
    let n = graph.vertex_count();
    let mut stats = RoundStats {
        round,
        ..RoundStats::default()
    };
    let mut edge_bytes = vec![0usize; graph.directed_edge_count()];
    let mut counts = vec![0usize; n];
    let mut charge = |slot: usize, from: VertexId, to: VertexId, len: usize| {
        let bytes = &mut edge_bytes[slot];
        *bytes += len;
        if let CongestLimit::PerEdgeBytes(limit) = limit {
            if *bytes > limit {
                return Err(SimError::CongestViolation {
                    from,
                    to,
                    bytes: *bytes,
                    limit,
                    round,
                });
            }
        }
        stats.messages += 1;
        stats.bytes += len;
        stats.max_edge_bytes = stats.max_edge_bytes.max(*bytes);
        counts[to] += 1;
        Ok(())
    };
    for (from, out) in outboxes.iter().enumerate() {
        for msg in out.messages() {
            let len = msg.payload.len();
            match &msg.to {
                Recipient::Neighbor(to) => {
                    let slot = graph
                        .edge_slot(from, *to)
                        .ok_or(SimError::NotNeighbor { from, to: *to })?;
                    charge(slot, from, *to, len)?;
                }
                Recipient::Neighbors(targets) => {
                    for &to in targets {
                        let slot = graph
                            .edge_slot(from, to)
                            .ok_or(SimError::NotNeighbor { from, to })?;
                        charge(slot, from, to, len)?;
                    }
                }
                Recipient::AllNeighbors => {
                    for slot in graph.neighbor_slots(from) {
                        charge(slot, from, graph.slot_target(slot), len)?;
                    }
                }
            }
        }
    }
    let mut offsets = vec![0usize; n + 1];
    for v in 0..n {
        offsets[v + 1] = offsets[v] + counts[v];
    }
    let mut data = vec![Incoming::default(); offsets[n]];
    let mut cursors = offsets[..n].to_vec();
    let mut deposit = |to: usize, from: usize, payload: &bytes::Bytes| {
        data[cursors[to]] = Incoming {
            from,
            payload: payload.clone(),
        };
        cursors[to] += 1;
    };
    for (from, out) in outboxes.iter().enumerate() {
        for msg in out.messages() {
            match &msg.to {
                Recipient::Neighbor(to) => deposit(*to, from, &msg.payload),
                Recipient::Neighbors(targets) => {
                    for &to in targets {
                        deposit(to, from, &msg.payload);
                    }
                }
                Recipient::AllNeighbors => {
                    for slot in graph.neighbor_slots(from) {
                        deposit(graph.slot_target(slot), from, &msg.payload);
                    }
                }
            }
        }
    }
    Ok((offsets, data, stats))
}

impl<'g, P: Protocol> Simulator<'g, P> {
    /// Creates a simulator over `graph`, instantiating each node's protocol
    /// with `make_node`.
    pub fn new<F>(graph: &'g Graph, mut make_node: F) -> Self
    where
        F: FnMut(VertexId, &Ctx<'_>) -> P,
    {
        let n = graph.vertex_count();
        let nodes = (0..n)
            .map(|id| {
                let ctx = Ctx { id, n, graph };
                make_node(id, &ctx)
            })
            .collect();
        let plan = ShardPlan::single(n);
        let routes = RouteIndex::new(graph, &plan);
        Simulator {
            graph,
            nodes,
            plan,
            routes,
            outboxes: vec![RwLock::new(vec![Outbox::new(); n])],
            routers: vec![RwLock::new(Router::default())],
            shards: vec![DeliveryShard::new(graph, 0, n)],
            encoders: Vec::new(),
            transport: None,
            backend: None,
            frame_config: FrameConfig::default(),
            overlap: true,
            limit: CongestLimit::Unlimited,
            engine: Engine::Sequential,
            workers: 1,
            pool: None,
            stats: RunStats::default(),
            round: 0,
            started: false,
        }
    }

    /// Sets the per-edge byte budget (CONGEST enforcement). Builder-style.
    #[must_use]
    pub fn with_limit(mut self, limit: CongestLimit) -> Self {
        self.limit = limit;
        self
    }

    /// Selects the round scheduler. Builder-style.
    ///
    /// Resolves the engine's `(threads, shards)` request (consulting
    /// `NETDECOMP_SHARDS` for an unspecified shard count), rebuilds the
    /// degree-balanced [`ShardPlan`], redistributes any pending state, and
    /// builds the worker-pool handle once, so each step's dispatch is a
    /// single `broadcast` on an existing pool. Note the *vendored* rayon
    /// shim backing this workspace has no persistent workers — a broadcast
    /// spawns one scoped thread set — so parallel stepping costs one spawn
    /// set per round (not one per phase) until a real pool lands (see
    /// ROADMAP "Open items"); with the real rayon crate the same call
    /// reuses persistent workers and stepping becomes spawn-free.
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        let (threads, shards, backend) = engine.resolve();
        self.reshard(ShardPlan::degree_balanced(self.graph, shards));
        self.workers = threads.min(self.plan.count()).max(1);
        self.pool = (self.workers > 1).then(|| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(self.workers)
                .build()
                .expect("pool construction is infallible")
        });
        self.backend = backend;
        self.frame_config = FrameConfig::from_env();
        self.overlap = env_overlap();
        let count = self.plan.count();
        self.encoders = match backend {
            Some(_) => (0..count)
                .map(|_| RwLock::new(FrameEncoder::new(count, self.frame_config)))
                .collect(),
            None => Vec::new(),
        };
        self.transport = backend.map(|t| match t {
            FrameTransport::Loopback => {
                Box::new(LoopbackTransport::new(count)) as Box<dyn Transport>
            }
            FrameTransport::Channel => Box::new(ChannelTransport::new(count)) as Box<dyn Transport>,
            FrameTransport::Socket => {
                Box::new(crate::transport::SocketTransport::unix_mesh(count)) as Box<dyn Transport>
            }
        });
        self
    }

    /// Replaces a framed engine's transport with a custom [`Transport`]
    /// implementation — the hook a socket (multi-process) backend plugs
    /// into. Builder-style; call *after* [`Simulator::with_engine`] with
    /// an [`Engine::Framed`] configuration, and connect exactly
    /// [`Simulator::shard_plan`]`.count()` shards (query it between the
    /// two calls if the shard count was left to resolution).
    ///
    /// # Panics
    ///
    /// Panics if the configured engine is not framed — a transport with
    /// nothing routed through it would be silently ignored otherwise.
    #[must_use]
    pub fn with_transport(mut self, transport: Box<dyn Transport>) -> Self {
        assert!(
            self.backend.is_some(),
            "with_transport requires an Engine::Framed configuration"
        );
        self.transport = Some(transport);
        self
    }

    /// Pins the wire format a framed engine's encoders write (version,
    /// payload coverage), overriding the environment-resolved default
    /// ([`FrameConfig::from_env`]). Decoding always accepts every
    /// supported version, so differently-configured peers interoperate.
    /// Builder-style; call *after* [`Simulator::with_engine`].
    ///
    /// # Panics
    ///
    /// Panics if the configured engine is not framed — a frame config
    /// with nothing encoded under it would be silently ignored otherwise.
    #[must_use]
    pub fn with_frame_config(mut self, config: FrameConfig) -> Self {
        assert!(
            self.backend.is_some(),
            "with_frame_config requires an Engine::Framed configuration"
        );
        self.frame_config = config;
        let count = self.plan.count();
        self.encoders = (0..count)
            .map(|_| RwLock::new(FrameEncoder::new(count, config)))
            .collect();
        self
    }

    /// Enables or disables the overlapped framed schedule (fused
    /// compute/account/ship, one barrier per round — see the module docs'
    /// round-schedule diagram), overriding `NETDECOMP_FRAME_OVERLAP`.
    /// Consulted only by framed engines; delivery results are
    /// bit-identical either way. Builder-style; call *after*
    /// [`Simulator::with_engine`], which re-resolves the environment
    /// default.
    #[must_use]
    pub fn with_overlap(mut self, overlap: bool) -> Self {
        self.overlap = overlap;
        self
    }

    /// Enables flight-recorder tracing with a ring of `window` rounds per
    /// shard (or disables it with `window == 0`), overriding the
    /// `NETDECOMP_TRACE` / `NETDECOMP_TRACE_WINDOW` environment defaults
    /// every shard resolves at construction. The rings are preallocated
    /// here, so steady-state stepping stays allocation-free with tracing
    /// on; recording never touches delivery, so results stay
    /// bit-identical ([`Determinism::Verify`] passes traced). Snapshot
    /// with [`Simulator::flight_traces`]. Builder-style; call *after*
    /// [`Simulator::with_engine`], which rebuilds the shards.
    #[must_use]
    pub fn with_trace(mut self, window: usize) -> Self {
        for shard in &mut self.shards {
            shard.trace = crate::trace::TraceRing::new(window);
        }
        self
    }

    /// Re-partitions all per-shard state under `plan`, preserving pending
    /// (undelivered) messages and outbox buffers.
    fn reshard(&mut self, plan: ShardPlan) {
        if plan == self.plan {
            return;
        }
        let mut flat: Vec<Outbox> = Vec::with_capacity(self.nodes.len());
        for chunk in self.outboxes.drain(..) {
            flat.extend(chunk.into_inner().expect("no poisoned outbox chunk"));
        }
        let old = std::mem::take(&mut self.shards);
        self.shards = (0..plan.count())
            .map(|k| {
                let r = plan.range(k);
                DeliveryShard::new(self.graph, r.start, r.end)
            })
            .collect();
        // Vertices ascend across old shards, and each new shard's range is
        // contiguous, so a single in-order sweep rebuilds every local CSR.
        // Pending payloads are re-registered per copy (not per message) in
        // the receiving slab — resharding is a cold path, and the next
        // round's placement rebuilds the exact per-message dedup.
        for shard in &old {
            for local in 0..shard.len() {
                let v = shard.start() + local;
                let new = &mut self.shards[plan.shard_of(v)];
                for m in shard.incoming(local).iter() {
                    let payload = new.slab.register(m.payload().clone());
                    new.slots.push(InboxSlot {
                        from: m.from() as u32,
                        payload,
                    });
                }
                let (base, filled) = (new.start(), new.slots.len());
                new.offsets[v - base + 1] = filled;
            }
        }
        let mut rest = flat.into_iter();
        self.outboxes = (0..plan.count())
            .map(|k| RwLock::new(rest.by_ref().take(plan.range(k).len()).collect()))
            .collect();
        self.routers = (0..plan.count())
            .map(|_| RwLock::new(Router::default()))
            .collect();
        self.routes = RouteIndex::new(self.graph, &plan);
        self.plan = plan;
    }

    /// The configured round scheduler.
    #[must_use]
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The resolved recipient-range partition delivery runs over.
    #[must_use]
    pub fn shard_plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The precomputed routing tables backing the current plan.
    #[must_use]
    pub fn route_index(&self) -> &RouteIndex {
        &self.routes
    }

    /// Work counters from the most recent round's place phase, summed
    /// over shards. With sender-side routing, `refs_scanned` is bounded
    /// by `messages + copies` at any shard count — exactly `messages`
    /// for unicast traffic, plus up to `min(degree, shards)` segment
    /// refs per broadcast — with no `shards × messages` rescan
    /// multiplier. The engine benches report these counters so the bound
    /// is visible in checked-in artifacts.
    #[must_use]
    pub fn delivery_work(&self) -> DeliveryWork {
        let mut work = DeliveryWork::default();
        for shard in &self.shards {
            // The per-shard counters hold only place-phase fields; absorb
            // saturates every one, so a long soak run pins instead of
            // wrapping.
            work.absorb(&shard.work);
        }
        // Shipping is sender-side, so the overlap counter lives on the
        // encoders (cumulative over the run, unlike the per-round place
        // counters above — see its field docs).
        for encoder in &self.encoders {
            work.overlap_ships = work
                .overlap_ships
                .saturating_add(encoder.read().expect("no poisoned encoder").overlap_ships());
        }
        // Transport health is cumulative over the run too: retries,
        // injected faults, and time blocked in collect.
        if let Some(transport) = &self.transport {
            let health = transport.health();
            work.frames_retried = work.frames_retried.saturating_add(health.frames_retried);
            work.frames_dropped_injected = work
                .frames_dropped_injected
                .saturating_add(health.frames_dropped_injected);
            work.collect_wait_ns = work.collect_wait_ns.saturating_add(health.collect_wait_ns);
            work.workers_restarted = work
                .workers_restarted
                .saturating_add(health.workers_restarted);
            work.rounds_replayed = work.rounds_replayed.saturating_add(health.rounds_replayed);
            work.heartbeats_missed = work
                .heartbeats_missed
                .saturating_add(health.heartbeats_missed);
        }
        work
    }

    /// Whether any shard is recording flight-recorder round traces.
    #[must_use]
    pub fn trace_enabled(&self) -> bool {
        self.shards.iter().any(|s| s.trace.enabled())
    }

    /// Chronological snapshots of every shard's flight-recorder ring —
    /// the last-K [`crate::RoundTrace`] records per shard. Empty unless
    /// tracing is on ([`Simulator::with_trace`] or `NETDECOMP_TRACE=1`
    /// at construction). Allocates; a cold-path call for postmortem
    /// dumps, never made from the round loop.
    #[must_use]
    pub fn flight_traces(&self) -> Vec<(usize, Vec<crate::RoundTrace>)> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.trace.enabled())
            .map(|(k, s)| (k, s.trace.snapshot()))
            .collect()
    }

    /// The messages delivered to vertex `v` in the most recent round
    /// (pending for its next compute), as a zero-copy [`Inbox`] view.
    ///
    /// Meant for drivers and tests that inspect delivery state between
    /// steps; protocols receive the same view through
    /// [`Protocol::round`].
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of the graph.
    #[must_use]
    pub fn incoming(&self, v: VertexId) -> Inbox<'_> {
        let shard = &self.shards[self.plan.shard_of(v)];
        shard.incoming(v - shard.start())
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Immutable access to all node states (index = vertex id).
    #[must_use]
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Mutable access to all node states, for drivers that reconfigure nodes
    /// between protocol phases.
    pub fn nodes_mut(&mut self) -> &mut [P] {
        &mut self.nodes
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Number of rounds executed so far.
    #[must_use]
    pub fn rounds_executed(&self) -> usize {
        self.round
    }

    /// `true` when all nodes are halted and no message is in flight.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.nodes.iter().all(Protocol::is_halted) && self.shards.iter().all(|s| s.slots.is_empty())
    }

    /// Repositions the round cursor after restoring checkpointed shard
    /// state ([`Simulator::restore_shard`]): the next step runs `round`
    /// exactly as the original run did — `start` for round 0, `round`
    /// consuming the restored inbox otherwise. Call between rounds
    /// only; a round boundary is the consistent cut checkpoints are
    /// taken at.
    pub fn resume_at(&mut self, round: usize) {
        self.round = round;
        self.started = round > 0;
    }

    /// Surfaces the round's first error (lowest shard, i.e. lowest sender
    /// id — matching a sequential sender-order scan) or commits the round
    /// by merging all per-shard stats.
    fn finish_round(&mut self) -> Result<RoundStats, SimError> {
        // Commit this round's trace records *before* the error check, so
        // a failing round's partial phase timings are already in the ring
        // when a flight recorder dumps it. No-op (and allocation-free)
        // with tracing off; frame bytes / checksum time come from the
        // per-round place counters reset at the top of placement.
        let round = self.round as u64;
        for shard in &mut self.shards {
            let frame_bytes = shard.work.frame_bytes as u64;
            let checksum_ns = shard.work.checksum_ns;
            shard.trace.commit(round, frame_bytes, checksum_ns, 0);
        }
        if let Some(e) = self.shards.iter().find_map(|s| s.error.clone()) {
            return Err(e);
        }
        let mut merged = RoundStats {
            round: self.round,
            ..RoundStats::default()
        };
        for shard in &self.shards {
            merged.messages = merged.messages.saturating_add(shard.stats.messages);
            merged.bytes = merged.bytes.saturating_add(shard.stats.bytes);
            merged.max_edge_bytes = merged.max_edge_bytes.max(shard.stats.max_edge_bytes);
        }
        self.round += 1;
        self.stats.absorb(merged);
        Ok(merged)
    }
}

impl<P: Protocol + Send> Simulator<'_, P> {
    /// Runs one round's three phases over all shards, leaving results and
    /// any error in the per-shard state (surfaced by `finish_round`).
    fn execute_round(&mut self) {
        if self.workers > 1 {
            self.execute_round_broadcast();
        } else {
            self.execute_round_inline();
        }
        self.started = true;
    }

    /// All phases inline on the calling thread, shard by shard.
    fn execute_round_inline(&mut self) {
        let graph = self.graph;
        let (started, limit, round) = (self.started, self.limit, self.round);
        let bounds = self.plan.boundaries();
        if self.backend.is_some() && self.overlap {
            // Overlapped framed schedule: each shard's frames are encoded
            // and shipped the moment its own compute and account finish,
            // before any later shard has computed — the inline analogue of
            // the single-barrier parallel schedule. See the module docs.
            let transport = self
                .transport
                .as_deref()
                .expect("framed backend built a transport");
            let count = self.shards.len();
            let mut ok = true;
            let mut node_rest: &mut [P] = &mut self.nodes;
            for (k, shard) in self.shards.iter_mut().enumerate() {
                let (mine, rest) = node_rest.split_at_mut(shard.len());
                node_rest = rest;
                let t = shard.trace.begin();
                {
                    let mut outs = self.outboxes[k].write().expect("no poisoned outbox chunk");
                    compute_shard(graph, started, shard, mine, &mut outs);
                }
                shard.trace.note_compute(t);
                let outs = self.outboxes[k].read().expect("no poisoned outbox chunk");
                let mut router = self.routers[k].write().expect("no poisoned router");
                let t = shard.trace.begin();
                if !shard.account(graph, &self.routes, limit, round, &outs, &mut router) {
                    ok = false;
                }
                shard.trace.note_account(t);
                // Ship even when this (or an earlier) shard's account
                // failed: partial buckets hold only refs that were charged
                // before the violation, and the transport must see exactly
                // one frame per link per round either way.
                let t = shard.trace.begin();
                let mut enc = self.encoders[k].write().expect("no poisoned encoder");
                enc.ship(k, &router, &outs, bounds[k], transport, true);
                shard.trace.note_ship(t);
            }
            if ok {
                for (j, shard) in self.shards.iter_mut().enumerate() {
                    let t = shard.trace.begin();
                    shard.place_frames(graph, j, round, transport, bounds);
                    shard.trace.note_place(t);
                }
            } else {
                for (j, shard) in self.shards.iter_mut().enumerate() {
                    shard.drain_frames(j, transport, count);
                }
            }
            return;
        }
        let mut node_rest: &mut [P] = &mut self.nodes;
        for (k, shard) in self.shards.iter_mut().enumerate() {
            let (mine, rest) = node_rest.split_at_mut(shard.len());
            node_rest = rest;
            let t = shard.trace.begin();
            {
                let mut outs = self.outboxes[k].write().expect("no poisoned outbox chunk");
                compute_shard(graph, started, shard, mine, &mut outs);
            }
            shard.trace.note_compute(t);
        }
        for (k, shard) in self.shards.iter_mut().enumerate() {
            let outs = self.outboxes[k].read().expect("no poisoned outbox chunk");
            let mut router = self.routers[k].write().expect("no poisoned router");
            let t = shard.trace.begin();
            let ok = shard.account(graph, &self.routes, limit, round, &outs, &mut router);
            shard.trace.note_account(t);
            if !ok {
                return;
            }
        }
        if self.backend.is_some() {
            let transport = self
                .transport
                .as_deref()
                .expect("framed backend built a transport");
            for (k, encoder) in self.encoders.iter().enumerate() {
                let outs = self.outboxes[k].read().expect("no poisoned outbox chunk");
                let router = self.routers[k].read().expect("no poisoned router");
                let t = self.shards[k].trace.begin();
                let mut enc = encoder.write().expect("no poisoned encoder");
                enc.ship(k, &router, &outs, bounds[k], transport, false);
                self.shards[k].trace.note_ship(t);
            }
            for (j, shard) in self.shards.iter_mut().enumerate() {
                let t = shard.trace.begin();
                shard.place_frames(graph, j, round, transport, bounds);
                shard.trace.note_place(t);
            }
        } else {
            for (k, shard) in self.shards.iter_mut().enumerate() {
                let t = shard.trace.begin();
                shard.place(graph, k, bounds, &self.outboxes, &self.routers);
                shard.trace.note_place(t);
            }
        }
    }

    /// All phases on all shards concurrently, inside one `broadcast` (one
    /// scoped thread set per step) with a barrier between phases.
    fn execute_round_broadcast(&mut self) {
        let graph = self.graph;
        let (started, limit, round) = (self.started, self.limit, self.round);
        let overlap = self.overlap;
        let bounds = self.plan.boundaries();
        let outboxes = &self.outboxes;
        let routers = &self.routers;
        let routes = &self.routes;
        let encoders = &self.encoders;
        let transport = self.transport.as_deref();
        let workers = self.workers;
        let total = self.shards.len();

        // Deal contiguous shard groups (with their node ranges) to workers;
        // each worker claims its task through an uncontended mutex, since a
        // broadcast closure is shared (`Fn`) across threads.
        let mut tasks: Vec<Mutex<WorkerTask<'_, P>>> = Vec::with_capacity(workers);
        let mut shard_rest: &mut [DeliveryShard] = &mut self.shards;
        let mut node_rest: &mut [P] = &mut self.nodes;
        let mut next = 0usize;
        for w in 0..workers {
            let hi = ((w + 1) * total) / workers;
            let (mine, rest) = shard_rest.split_at_mut(hi - next);
            shard_rest = rest;
            let mut slots = Vec::with_capacity(mine.len());
            for (j, shard) in mine.iter_mut().enumerate() {
                let (nodes, rest) = node_rest.split_at_mut(shard.len());
                node_rest = rest;
                slots.push(ShardSlot {
                    index: next + j,
                    shard,
                    nodes,
                });
            }
            tasks.push(Mutex::new(WorkerTask { slots }));
            next = hi;
        }

        let barrier = PhaseBarrier::new(workers);
        let abort = AtomicBool::new(false);
        let pool = self.pool.as_ref().expect("parallel step built a pool");
        pool.broadcast(|ctx| {
            let _poison_guard = PoisonOnPanic(&barrier);
            let mut task = tasks[ctx.index()].lock().expect("no poisoned worker task");
            if let (Some(transport), true) = (transport, overlap) {
                // Overlapped framed schedule — one fused phase, one
                // barrier. Compute, account, and ship all touch only the
                // shard's own state (ship serializes the shard's own
                // buckets), so no barrier is needed between them; the
                // single barrier below is the ship barrier, ordering every
                // send before any collect. See the module docs.
                for slot in task.slots.iter_mut() {
                    let t = slot.shard.trace.begin();
                    {
                        let mut outs = outboxes[slot.index]
                            .write()
                            .expect("no poisoned outbox chunk");
                        compute_shard(graph, started, slot.shard, slot.nodes, &mut outs);
                    }
                    slot.shard.trace.note_compute(t);
                    let outs = outboxes[slot.index]
                        .read()
                        .expect("no poisoned outbox chunk");
                    let mut router = routers[slot.index].write().expect("no poisoned router");
                    let t = slot.shard.trace.begin();
                    if !slot
                        .shard
                        .account(graph, routes, limit, round, &outs, &mut router)
                    {
                        abort.store(true, Ordering::Relaxed);
                    }
                    slot.shard.trace.note_account(t);
                    // Ship even when account failed: partial buckets hold
                    // only refs charged before the violation, and the
                    // transport must see exactly one frame per link per
                    // round either way (no shard knows yet whether some
                    // other shard's account will fail).
                    let t = slot.shard.trace.begin();
                    let mut enc = encoders[slot.index].write().expect("no poisoned encoder");
                    enc.ship(
                        slot.index,
                        &router,
                        &outs,
                        bounds[slot.index],
                        transport,
                        true,
                    );
                    slot.shard.trace.note_ship(t);
                }
                timed_barrier_wait(&barrier, &mut task);
                if abort.load(Ordering::Relaxed) {
                    // Every frame was already shipped, so the aborting
                    // round drains them (collect + drop, undecoded) to
                    // keep the transport empty for whoever inspects the
                    // simulator next.
                    for slot in task.slots.iter_mut() {
                        slot.shard.drain_frames(slot.index, transport, total);
                    }
                    return;
                }
                for slot in task.slots.iter_mut() {
                    let t = slot.shard.trace.begin();
                    slot.shard
                        .place_frames(graph, slot.index, round, transport, bounds);
                    slot.shard.trace.note_place(t);
                }
                return;
            }
            // Phase 1 — compute: own nodes fill own outbox chunks.
            for slot in task.slots.iter_mut() {
                let t = slot.shard.trace.begin();
                let mut outs = outboxes[slot.index]
                    .write()
                    .expect("no poisoned outbox chunk");
                compute_shard(graph, started, slot.shard, slot.nodes, &mut outs);
                drop(outs);
                slot.shard.trace.note_compute(t);
            }
            timed_barrier_wait(&barrier, &mut task);
            // Phase 2 — account: own outboxes charge own edge counters
            // and fill the shard's own router buckets.
            for slot in task.slots.iter_mut() {
                let outs = outboxes[slot.index]
                    .read()
                    .expect("no poisoned outbox chunk");
                let mut router = routers[slot.index].write().expect("no poisoned router");
                let t = slot.shard.trace.begin();
                if !slot
                    .shard
                    .account(graph, routes, limit, round, &outs, &mut router)
                {
                    abort.store(true, Ordering::Relaxed);
                }
                slot.shard.trace.note_account(t);
            }
            timed_barrier_wait(&barrier, &mut task);
            // Every worker observes the same flag after the barrier, so all
            // of them skip placement together (no one left waiting). Under
            // a framed backend this also means *no* frame is shipped, so
            // the transport stays balanced for the next round.
            if abort.load(Ordering::Relaxed) {
                return;
            }
            if let Some(transport) = transport {
                // Phase 3 (framed) — ship: each shard serializes its own
                // buckets (refs + payload bytes from its own outboxes)
                // into one frame per destination shard.
                for slot in task.slots.iter_mut() {
                    let outs = outboxes[slot.index]
                        .read()
                        .expect("no poisoned outbox chunk");
                    let router = routers[slot.index].read().expect("no poisoned router");
                    let t = slot.shard.trace.begin();
                    let mut enc = encoders[slot.index].write().expect("no poisoned encoder");
                    enc.ship(
                        slot.index,
                        &router,
                        &outs,
                        bounds[slot.index],
                        transport,
                        false,
                    );
                    slot.shard.trace.note_ship(t);
                }
                timed_barrier_wait(&barrier, &mut task);
                // Phase 4 (framed) — place: each shard decodes the frames
                // addressed to it and scatters into its own inbox slice,
                // touching no other shard's memory.
                for slot in task.slots.iter_mut() {
                    let t = slot.shard.trace.begin();
                    slot.shard
                        .place_frames(graph, slot.index, round, transport, bounds);
                    slot.shard.trace.note_place(t);
                }
            } else {
                // Phase 3 — place: each shard consumes the route-ref
                // buckets addressed to it and scatters into its own inbox
                // slice.
                for slot in task.slots.iter_mut() {
                    let t = slot.shard.trace.begin();
                    slot.shard
                        .place(graph, slot.index, bounds, outboxes, routers);
                    slot.shard.trace.note_place(t);
                }
            }
        });
    }

    /// Executes one synchronous round: let every node compute, then merge
    /// and queue its outgoing messages for the next round (all phases
    /// sharded, and parallel under [`Engine::Parallel`]).
    ///
    /// # Errors
    ///
    /// [`SimError::NotNeighbor`] if a node unicasts or multicasts to a
    /// non-neighbor; [`SimError::CongestViolation`] if an edge's byte
    /// budget is exceeded.
    pub fn step(&mut self) -> Result<RoundStats, SimError> {
        self.execute_round();
        self.finish_round()
    }

    /// Runs exactly `rounds` rounds.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`] from [`Simulator::step`].
    pub fn run_rounds(&mut self, rounds: usize) -> Result<RunStats, SimError> {
        self.run_rounds_loop(rounds, |s| s.step())
    }

    /// Runs until every node halts and no message is in flight, up to
    /// `max_rounds`.
    ///
    /// # Errors
    ///
    /// [`SimError::RoundLimitExceeded`] if quiescence is not reached within
    /// the budget; otherwise propagates [`Simulator::step`] errors.
    pub fn run_to_quiescence(&mut self, max_rounds: usize) -> Result<RunStats, SimError> {
        self.run_quiescence_loop(max_rounds, |s| s.step())
    }

    /// Shared body of the fixed-round runners.
    fn run_rounds_loop(
        &mut self,
        rounds: usize,
        mut step: impl FnMut(&mut Self) -> Result<RoundStats, SimError>,
    ) -> Result<RunStats, SimError> {
        let mut run = RunStats::default();
        for _ in 0..rounds {
            run.absorb(step(self)?);
        }
        Ok(run)
    }

    /// Shared body of the run-to-quiescence runners.
    fn run_quiescence_loop(
        &mut self,
        max_rounds: usize,
        mut step: impl FnMut(&mut Self) -> Result<RoundStats, SimError>,
    ) -> Result<RunStats, SimError> {
        let mut run = RunStats::default();
        for _ in 0..max_rounds {
            run.absorb(step(self)?);
            if self.is_quiescent() {
                return Ok(run);
            }
        }
        // A zero budget asks for no work: succeed iff already quiescent.
        if max_rounds == 0 && self.is_quiescent() {
            return Ok(run);
        }
        Err(SimError::RoundLimitExceeded { limit: max_rounds })
    }
}

impl<P: Protocol + Send + Clone> Simulator<'_, P> {
    /// First vertex whose outbox differs from the reference set, if any.
    fn first_outbox_divergence(&self, reference: &[Outbox]) -> Option<VertexId> {
        let mut base = 0;
        for chunk in &self.outboxes {
            let chunk = chunk.read().expect("no poisoned outbox chunk");
            for (i, out) in chunk.iter().enumerate() {
                if *out != reference[base + i] {
                    return Some(base + i);
                }
            }
            base += chunk.len();
        }
        None
    }

    /// Like [`Simulator::step`], but also re-runs the round sequentially —
    /// compute on cloned nodes, delivery as a single-buffer reference
    /// merge — and requires both executions to be bit-identical.
    ///
    /// # Errors
    ///
    /// [`SimError::Nondeterminism`] on divergence, plus everything
    /// [`Simulator::step`] can return.
    pub fn step_verified(&mut self) -> Result<RoundStats, SimError> {
        if self.workers <= 1 && self.shards.len() <= 1 && self.backend.is_none() {
            return self.step();
        }
        // Sequential reference compute on cloned nodes, against the same
        // pre-round inboxes.
        let mut reference_nodes = self.nodes.clone();
        let mut reference_outboxes = vec![Outbox::new(); self.nodes.len()];
        {
            let mut node_rest: &mut [P] = &mut reference_nodes;
            let mut out_rest: &mut [Outbox] = &mut reference_outboxes;
            for shard in &self.shards {
                let (nodes, rest) = node_rest.split_at_mut(shard.len());
                node_rest = rest;
                let (outs, rest) = out_rest.split_at_mut(shard.len());
                out_rest = rest;
                compute_shard(self.graph, self.started, shard, nodes, outs);
            }
        }
        let round = self.round;
        self.execute_round();
        if let Some(vertex) = self.first_outbox_divergence(&reference_outboxes) {
            return Err(SimError::Nondeterminism { round, vertex });
        }
        if let Some(e) = self.shards.iter().find_map(|s| s.error.clone()) {
            return Err(e);
        }
        // Delivery cross-check: the sharded inboxes must match a global
        // sequential merge of the (just verified) outboxes.
        match deliver_reference(self.graph, self.limit, round, &reference_outboxes) {
            Ok((offsets, data, reference_stats)) => {
                for shard in &self.shards {
                    for local in 0..shard.len() {
                        let v = shard.start() + local;
                        if shard.incoming(local) != data[offsets[v]..offsets[v + 1]] {
                            return Err(SimError::Nondeterminism { round, vertex: v });
                        }
                    }
                }
                let merged: usize = self.shards.iter().map(|s| s.stats.messages).sum();
                debug_assert_eq!(merged, reference_stats.messages, "stats diverged");
            }
            // The sharded account pass succeeded on identical outboxes, so
            // a reference-side error is itself a divergence.
            Err(SimError::CongestViolation { from, .. } | SimError::NotNeighbor { from, .. }) => {
                return Err(SimError::Nondeterminism {
                    round,
                    vertex: from,
                });
            }
            Err(e) => return Err(e),
        }
        self.finish_round()
    }

    /// Runs exactly `rounds` rounds under the given [`Determinism`] mode.
    ///
    /// # Errors
    ///
    /// As [`Simulator::step_verified`].
    pub fn run_rounds_with(
        &mut self,
        rounds: usize,
        determinism: Determinism,
    ) -> Result<RunStats, SimError> {
        match determinism {
            Determinism::Trust => self.run_rounds(rounds),
            Determinism::Verify => self.run_rounds_loop(rounds, |s| s.step_verified()),
        }
    }

    /// Runs to quiescence under the given [`Determinism`] mode.
    ///
    /// # Errors
    ///
    /// As [`Simulator::run_to_quiescence`] and
    /// [`Simulator::step_verified`].
    pub fn run_to_quiescence_with(
        &mut self,
        max_rounds: usize,
        determinism: Determinism,
    ) -> Result<RunStats, SimError> {
        match determinism {
            Determinism::Trust => self.run_to_quiescence(max_rounds),
            Determinism::Verify => self.run_quiescence_loop(max_rounds, |s| s.step_verified()),
        }
    }
}

/// The engine-level checkpoint API, available once the protocol opts
/// into the [`Snapshot`] seam. A round boundary (between `step`s) is
/// already a consistent cut: every delivery of the previous round has
/// been placed, nothing of the next has run — so one payload per shard,
/// plus the round cursor, is a complete resumable image of the run.
impl<P: Protocol + Snapshot> Simulator<'_, P> {
    /// Serializes shard `k`'s complete round-boundary state — every
    /// owned node's [`Snapshot`] state, the pending inbox the next
    /// compute will consume, the sparse per-edge CONGEST counters, and
    /// the accumulated [`RunStats`] — as an opaque checkpoint payload
    /// (the same bytes a socket worker writes inside a
    /// [`crate::Checkpoint`] file).
    ///
    /// # Panics
    ///
    /// Panics if `k` is not a shard of the current plan.
    #[must_use]
    pub fn snapshot_shard(&self, k: usize) -> Vec<u8> {
        let range = self.plan.range(k);
        crate::checkpoint::encode_worker_payload(
            &self.nodes[range.start..range.end],
            &self.shards[k],
            &self.stats,
        )
    }

    /// Overlays a [`Simulator::snapshot_shard`] payload onto shard `k`:
    /// node states are restored through [`Snapshot::load_state`], the
    /// pending inbox and CONGEST counters rebuilt, and the simulator's
    /// accumulated stats replaced by the checkpointed accumulation
    /// (snapshots of the same boundary carry identical stats, so
    /// restoring several shards is idempotent on them). Follow with
    /// [`Simulator::resume_at`] to reposition the round cursor.
    ///
    /// Returns `false` — leaving the shard in an unspecified but safe
    /// state — when the payload is malformed or shaped for a different
    /// plan; callers then rebuild from round 0 instead.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not a shard of the current plan.
    pub fn restore_shard(&mut self, k: usize, payload: &[u8]) -> bool {
        let range = self.plan.range(k);
        crate::checkpoint::decode_worker_payload(
            payload,
            &mut self.nodes[range.start..range.end],
            &mut self.shards[k],
            &mut self.stats,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use netdecomp_graph::generators;

    /// Every node floods a token once; distance of first receipt is recorded.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct FloodDist {
        dist: Option<usize>,
        rounds_seen: usize,
    }

    impl FloodDist {
        fn fresh() -> Self {
            FloodDist {
                dist: None,
                rounds_seen: 0,
            }
        }
    }

    impl Protocol for FloodDist {
        fn start(&mut self, ctx: &Ctx<'_>, out: &mut Outbox) {
            if ctx.id == 0 {
                self.dist = Some(0);
                out.broadcast(Bytes::from_static(b"t"));
            }
        }

        fn round(&mut self, _ctx: &Ctx<'_>, incoming: Inbox<'_>, out: &mut Outbox) {
            self.rounds_seen += 1;
            if self.dist.is_none() && !incoming.is_empty() {
                self.dist = Some(self.rounds_seen);
                out.broadcast(Bytes::from_static(b"t"));
            }
        }

        fn is_halted(&self) -> bool {
            self.dist.is_some()
        }
    }

    fn flood(g: &netdecomp_graph::Graph, engine: Engine) -> Vec<Option<usize>> {
        let mut sim = Simulator::new(g, |_, _| FloodDist::fresh()).with_engine(engine);
        // Flooding cannot take more rounds than n.
        let _ = sim.run_to_quiescence(g.vertex_count() + 2);
        sim.nodes().iter().map(|n| n.dist).collect()
    }

    #[test]
    fn flooding_computes_bfs_distances() {
        for g in [
            generators::path(8),
            generators::cycle(9),
            generators::grid2d(4, 5),
            generators::star(6),
        ] {
            let from_bfs = netdecomp_graph::bfs::distances(&g, 0);
            assert_eq!(flood(&g, Engine::Sequential), from_bfs);
            for (threads, shards) in [(4, 1), (1, 4), (4, 4), (3, 7)] {
                assert_eq!(
                    flood(&g, Engine::Parallel { threads, shards }),
                    from_bfs,
                    "threads {threads} shards {shards}"
                );
                for transport in [
                    FrameTransport::Loopback,
                    FrameTransport::Channel,
                    FrameTransport::Socket,
                ] {
                    assert_eq!(
                        flood(
                            &g,
                            Engine::Framed {
                                threads,
                                shards,
                                transport
                            }
                        ),
                        from_bfs,
                        "{transport:?} threads {threads} shards {shards}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_engine_matches_sequential_bit_for_bit() {
        let g = generators::grid2d(7, 9);
        let mut seq = Simulator::new(&g, |_, _| FloodDist::fresh());
        let mut par = Simulator::new(&g, |_, _| FloodDist::fresh()).with_engine(Engine::Parallel {
            threads: 3,
            shards: 5,
        });
        let a = seq.run_rounds(20).unwrap();
        let b = par.run_rounds(20).unwrap();
        assert_eq!(a, b);
        assert_eq!(seq.nodes(), par.nodes());
        assert_eq!(seq.stats(), par.stats());
    }

    #[test]
    fn framed_backends_match_sequential_bit_for_bit() {
        let g = generators::grid2d(7, 9);
        let mut seq = Simulator::new(&g, |_, _| FloodDist::fresh());
        let a = seq.run_rounds(20).unwrap();
        for transport in [
            FrameTransport::Loopback,
            FrameTransport::Channel,
            FrameTransport::Socket,
        ] {
            for (threads, shards) in [(1, 1), (1, 5), (3, 5), (4, 2)] {
                let mut par =
                    Simulator::new(&g, |_, _| FloodDist::fresh()).with_engine(Engine::Framed {
                        threads,
                        shards,
                        transport,
                    });
                let b = par.run_rounds(20).unwrap();
                assert_eq!(a, b, "{transport:?} threads {threads} shards {shards}");
                assert_eq!(seq.nodes(), par.nodes());
                assert_eq!(seq.stats(), par.stats());
            }
        }
    }

    #[test]
    fn framed_verified_stepping_accepts_deterministic_protocols() {
        for transport in [
            FrameTransport::Loopback,
            FrameTransport::Channel,
            FrameTransport::Socket,
        ] {
            let g = generators::grid2d(5, 5);
            let mut sim =
                Simulator::new(&g, |_, _| FloodDist::fresh()).with_engine(Engine::Framed {
                    threads: 2,
                    shards: 3,
                    transport,
                });
            let run = sim.run_to_quiescence_with(40, Determinism::Verify).unwrap();
            assert!(run.rounds > 0);
            assert!(sim.nodes().iter().all(|n| n.dist.is_some()));
        }
    }

    #[test]
    fn framed_delivery_reports_frame_bytes() {
        let g = generators::grid2d(4, 4);
        let mut shared =
            Simulator::new(&g, |_, _| FloodDist::fresh()).with_engine(Engine::Parallel {
                threads: 1,
                shards: 4,
            });
        shared.step().unwrap();
        // Under a NETDECOMP_BACKEND sweep the `Parallel` engine above
        // legitimately resolves to a framed backend, so only assert the
        // zero when shared-memory delivery is actually in effect.
        if env_backend().is_none() {
            assert_eq!(shared.delivery_work().frame_bytes, 0, "no frames in memory");
        }
        let mut framed =
            Simulator::new(&g, |_, _| FloodDist::fresh()).with_engine(Engine::Framed {
                threads: 1,
                shards: 4,
                transport: FrameTransport::Loopback,
            });
        framed.step().unwrap();
        let work = framed.delivery_work();
        // 16 frames (4x4) of >= 28 header bytes each, plus the round's
        // refs and payloads.
        assert!(work.frame_bytes >= 16 * 28, "bytes {}", work.frame_bytes);
        assert_eq!(
            work.copies_delivered,
            shared.delivery_work().copies_delivered
        );
    }

    #[test]
    fn overlap_and_checksum_counters_report_the_framed_schedule() {
        let g = generators::grid2d(4, 4);
        let engine = Engine::Framed {
            threads: 1,
            shards: 4,
            transport: FrameTransport::Loopback,
        };
        let mut overlapped = Simulator::new(&g, |_, _| FloodDist::fresh())
            .with_engine(engine)
            .with_overlap(true);
        overlapped.step().unwrap();
        overlapped.step().unwrap();
        let work = overlapped.delivery_work();
        // Every frame ships from the fused phase: shards² per round,
        // cumulative over the run (unlike the per-round place counters).
        assert_eq!(work.overlap_ships, 2 * 16, "two rounds of 4x4 frames");
        // Decode-side validation time is measured under framed delivery.
        assert!(work.checksum_ns > 0, "16 frames validated per round");
        let mut separated = Simulator::new(&g, |_, _| FloodDist::fresh())
            .with_engine(engine)
            .with_overlap(false);
        separated.step().unwrap();
        separated.step().unwrap();
        assert_eq!(
            separated.delivery_work().overlap_ships,
            0,
            "phase-separated schedule never ships from the fused phase"
        );
        assert_eq!(overlapped.nodes(), separated.nodes(), "schedules diverged");
    }

    #[test]
    fn custom_transports_plug_into_the_frame_seam() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;

        /// A stand-in for a socket transport: delegates to loopback but
        /// counts every frame it carries.
        #[derive(Debug)]
        struct Counted {
            inner: LoopbackTransport,
            carried: Arc<AtomicUsize>,
        }
        impl Transport for Counted {
            fn send(&self, from: usize, to: usize, frame: bytes::Bytes) {
                self.carried.fetch_add(1, Ordering::Relaxed);
                self.inner.send(from, to, frame);
            }
            fn collect(
                &self,
                to: usize,
                into: &mut [Option<bytes::Bytes>],
            ) -> Result<(), crate::error::TransportError> {
                self.inner.collect(to, into)
            }
        }

        let g = generators::grid2d(5, 5);
        let mut seq = Simulator::new(&g, |_, _| FloodDist::fresh());
        seq.run_to_quiescence(40).unwrap();

        let carried = Arc::new(AtomicUsize::new(0));
        let shards = 3;
        let mut sim = Simulator::new(&g, |_, _| FloodDist::fresh())
            .with_engine(Engine::Framed {
                threads: 1,
                shards,
                transport: FrameTransport::Loopback,
            })
            .with_transport(Box::new(Counted {
                inner: LoopbackTransport::new(shards),
                carried: Arc::clone(&carried),
            }));
        let run = sim.run_to_quiescence(40).unwrap();
        assert_eq!(seq.nodes(), sim.nodes(), "custom transport diverged");
        // Every round ships exactly shards^2 frames through the plug-in.
        assert_eq!(
            carried.load(Ordering::Relaxed),
            run.rounds * shards * shards
        );
    }

    #[test]
    fn custom_transport_without_a_framed_engine_is_rejected() {
        // Under a NETDECOMP_BACKEND sweep `Parallel` resolves to a framed
        // backend and attaching a transport is legitimate; the rejection
        // only applies to genuinely shared-memory engines.
        if env_backend().is_some() {
            return;
        }
        let g = generators::path(3);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = Simulator::new(&g, |_, _| FloodDist::fresh())
                .with_engine(Engine::Parallel {
                    threads: 1,
                    shards: 2,
                })
                .with_transport(Box::new(LoopbackTransport::new(2)));
        }));
        let err = panicked.expect_err("with_transport must reject a shared-memory engine");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or_default()
            .to_string();
        assert!(msg.contains("requires an Engine::Framed"), "panic: {msg}");
    }

    #[test]
    fn framed_congest_error_is_identical_to_sequential() {
        let g = generators::grid2d(4, 4);
        let seq_err = Simulator::new(&g, |_, _| Shout { payload: 9 })
            .with_limit(CongestLimit::PerEdgeBytes(8))
            .step()
            .unwrap_err();
        for transport in [
            FrameTransport::Loopback,
            FrameTransport::Channel,
            FrameTransport::Socket,
        ] {
            let framed_err = Simulator::new(&g, |_, _| Shout { payload: 9 })
                .with_limit(CongestLimit::PerEdgeBytes(8))
                .with_engine(Engine::Framed {
                    threads: 2,
                    shards: 5,
                    transport,
                })
                .step()
                .unwrap_err();
            assert_eq!(seq_err, framed_err, "{transport:?}");
        }
    }

    #[test]
    fn verified_stepping_accepts_deterministic_protocols() {
        let g = generators::grid2d(5, 5);
        let mut sim = Simulator::new(&g, |_, _| FloodDist::fresh()).with_engine(Engine::Parallel {
            threads: 4,
            shards: 3,
        });
        let run = sim.run_to_quiescence_with(40, Determinism::Verify).unwrap();
        assert!(run.rounds > 0);
        assert!(sim.nodes().iter().all(|n| n.dist.is_some()));
    }

    /// A protocol whose sequential-reference clone misbehaves: the clone
    /// (used only by `Verify`'s reference execution) broadcasts a different
    /// payload, which must be reported as nondeterminism.
    #[derive(Debug, PartialEq, Eq)]
    struct EvilClone {
        cloned: bool,
    }

    impl Clone for EvilClone {
        fn clone(&self) -> Self {
            EvilClone { cloned: true }
        }
    }

    impl Protocol for EvilClone {
        fn start(&mut self, _ctx: &Ctx<'_>, out: &mut Outbox) {
            out.broadcast(Bytes::from(vec![u8::from(self.cloned)]));
        }
        fn round(&mut self, _: &Ctx<'_>, _: Inbox<'_>, _: &mut Outbox) {}
    }

    #[test]
    fn verified_stepping_reports_divergent_outboxes() {
        let g = generators::path(4);
        let mut sim =
            Simulator::new(&g, |_, _| EvilClone { cloned: false }).with_engine(Engine::Parallel {
                threads: 2,
                shards: 2,
            });
        let err = sim.step_verified().unwrap_err();
        assert!(matches!(
            err,
            SimError::Nondeterminism {
                round: 0,
                vertex: 0
            }
        ));
    }

    #[test]
    fn disconnected_nodes_stay_unreached_and_run_hits_limit() {
        let g = netdecomp_graph::Graph::from_edges(3, &[(0, 1)]).unwrap();
        let mut sim = Simulator::new(&g, |_, _| FloodDist::fresh());
        // Node 2 never halts -> quiescence unreachable.
        let err = sim.run_to_quiescence(5).unwrap_err();
        assert_eq!(err, SimError::RoundLimitExceeded { limit: 5 });
        assert_eq!(sim.nodes()[2].dist, None);
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let g = generators::path(3);
        let mut sim = Simulator::new(&g, |_, _| FloodDist::fresh());
        let run = sim.run_to_quiescence(10).unwrap();
        // Round 0: node 0 broadcasts to 1 neighbor. Round 1: node 1
        // broadcasts to 2 neighbors. Round 2: node 2 broadcasts to 1.
        assert_eq!(run.total_messages, 1 + 2 + 1);
        assert_eq!(run.total_bytes, 4);
        assert_eq!(run.max_edge_bytes, 1);
    }

    #[derive(Debug, Clone)]
    struct Shout {
        payload: usize,
    }

    impl Protocol for Shout {
        fn start(&mut self, _ctx: &Ctx<'_>, out: &mut Outbox) {
            out.broadcast(Bytes::from(vec![0u8; self.payload]));
        }
        fn round(&mut self, _ctx: &Ctx<'_>, _incoming: Inbox<'_>, _out: &mut Outbox) {}
        fn is_halted(&self) -> bool {
            true
        }
    }

    #[test]
    fn congest_limit_enforced() {
        let g = generators::path(2);
        let mut sim = Simulator::new(&g, |_, _| Shout { payload: 17 })
            .with_limit(CongestLimit::PerEdgeBytes(16));
        let err = sim.step().unwrap_err();
        assert!(matches!(
            err,
            SimError::CongestViolation {
                bytes: 17,
                limit: 16,
                ..
            }
        ));
    }

    #[test]
    fn congest_limit_allows_exact_budget() {
        let g = generators::path(2);
        let mut sim = Simulator::new(&g, |_, _| Shout { payload: 16 })
            .with_limit(CongestLimit::PerEdgeBytes(16));
        assert!(sim.step().is_ok());
    }

    #[test]
    fn congest_error_is_identical_across_engines() {
        // The reported violation (lowest sender in round order) must not
        // depend on sharding or threading.
        let g = generators::grid2d(4, 4);
        let seq_err = Simulator::new(&g, |_, _| Shout { payload: 9 })
            .with_limit(CongestLimit::PerEdgeBytes(8))
            .step()
            .unwrap_err();
        for (threads, shards) in [(1, 4), (4, 4), (2, 7)] {
            let par_err = Simulator::new(&g, |_, _| Shout { payload: 9 })
                .with_limit(CongestLimit::PerEdgeBytes(8))
                .with_engine(Engine::Parallel { threads, shards })
                .step()
                .unwrap_err();
            assert_eq!(seq_err, par_err, "threads {threads} shards {shards}");
        }
    }

    struct BadAddress;

    impl Protocol for BadAddress {
        fn start(&mut self, ctx: &Ctx<'_>, out: &mut Outbox) {
            if ctx.id == 0 {
                out.unicast(2, Bytes::new()); // 2 is not a neighbor of 0
            }
        }
        fn round(&mut self, _ctx: &Ctx<'_>, _incoming: Inbox<'_>, _out: &mut Outbox) {}
    }

    #[test]
    fn unicast_to_non_neighbor_is_rejected() {
        let g = generators::path(3); // 0-1-2
        let mut sim = Simulator::new(&g, |_, _| BadAddress);
        assert_eq!(
            sim.step().unwrap_err(),
            SimError::NotNeighbor { from: 0, to: 2 }
        );
    }

    #[test]
    fn multicast_to_non_neighbor_is_rejected() {
        struct BadMulticast;
        impl Protocol for BadMulticast {
            fn start(&mut self, ctx: &Ctx<'_>, out: &mut Outbox) {
                if ctx.id == 0 {
                    out.multicast(vec![1, 2], Bytes::new()); // 2 is not adjacent
                }
            }
            fn round(&mut self, _: &Ctx<'_>, _: Inbox<'_>, _: &mut Outbox) {}
        }
        let g = generators::path(3);
        let mut sim = Simulator::new(&g, |_, _| BadMulticast);
        assert_eq!(
            sim.step().unwrap_err(),
            SimError::NotNeighbor { from: 0, to: 2 }
        );
    }

    #[test]
    fn two_unicasts_on_one_edge_share_budget() {
        struct TwoMessages;
        impl Protocol for TwoMessages {
            fn start(&mut self, ctx: &Ctx<'_>, out: &mut Outbox) {
                if ctx.id == 0 {
                    out.unicast(1, Bytes::from(vec![0u8; 10]));
                    out.unicast(1, Bytes::from(vec![0u8; 10]));
                }
            }
            fn round(&mut self, _: &Ctx<'_>, _: Inbox<'_>, _: &mut Outbox) {}
            fn is_halted(&self) -> bool {
                true
            }
        }
        let g = generators::path(2);
        let mut sim =
            Simulator::new(&g, |_, _| TwoMessages).with_limit(CongestLimit::PerEdgeBytes(16));
        let err = sim.step().unwrap_err();
        assert!(matches!(err, SimError::CongestViolation { bytes: 20, .. }));
    }

    #[test]
    fn multicast_charges_every_listed_edge() {
        // A duplicate target is charged (and delivered) twice, exactly as
        // two unicasts would be.
        struct DoubleTap;
        impl Protocol for DoubleTap {
            fn start(&mut self, ctx: &Ctx<'_>, out: &mut Outbox) {
                if ctx.id == 0 {
                    out.multicast(vec![1, 1], Bytes::from(vec![0u8; 10]));
                }
            }
            fn round(&mut self, _: &Ctx<'_>, _: Inbox<'_>, _: &mut Outbox) {}
            fn is_halted(&self) -> bool {
                true
            }
        }
        let g = generators::path(2);
        let mut sim =
            Simulator::new(&g, |_, _| DoubleTap).with_limit(CongestLimit::PerEdgeBytes(16));
        let err = sim.step().unwrap_err();
        assert!(matches!(err, SimError::CongestViolation { bytes: 20, .. }));
    }

    #[test]
    fn incoming_is_ordered_by_sender_id() {
        /// Every node broadcasts its own id once; receivers record order.
        #[derive(Debug, Clone)]
        struct Gossip {
            heard: Vec<usize>,
        }
        impl Protocol for Gossip {
            fn start(&mut self, ctx: &Ctx<'_>, out: &mut Outbox) {
                out.broadcast(Bytes::from(vec![ctx.id as u8]));
            }
            fn round(&mut self, _ctx: &Ctx<'_>, incoming: Inbox<'_>, _out: &mut Outbox) {
                for m in incoming.iter() {
                    self.heard.push(m.from());
                }
            }
            fn is_halted(&self) -> bool {
                true
            }
        }
        let g = generators::star(6); // center 0 hears 1..=5
        for engine in [
            Engine::Sequential,
            Engine::Parallel {
                threads: 3,
                shards: 4,
            },
        ] {
            let mut sim =
                Simulator::new(&g, |_, _| Gossip { heard: Vec::new() }).with_engine(engine);
            sim.run_rounds(2).unwrap();
            assert_eq!(sim.nodes()[0].heard, vec![1, 2, 3, 4, 5]);
            for v in 1..6 {
                assert_eq!(sim.nodes()[v].heard, vec![0]);
            }
        }
    }

    #[test]
    fn multicast_delivers_in_list_order_within_sender() {
        // The center multicasts to a permuted neighbor list; delivery
        // order per recipient is (sender, send order), and each listed
        // target gets exactly one copy regardless of sharding.
        #[derive(Debug, Clone)]
        struct Center {
            heard: Vec<usize>,
        }
        impl Protocol for Center {
            fn start(&mut self, ctx: &Ctx<'_>, out: &mut Outbox) {
                if ctx.id == 0 {
                    out.multicast(vec![5, 2, 4], Bytes::from_static(b"m"));
                }
            }
            fn round(&mut self, _ctx: &Ctx<'_>, incoming: Inbox<'_>, _out: &mut Outbox) {
                for m in incoming.iter() {
                    self.heard.push(m.from());
                }
            }
            fn is_halted(&self) -> bool {
                true
            }
        }
        let g = generators::star(6);
        for shards in [1, 3, 6] {
            let mut sim = Simulator::new(&g, |_, _| Center { heard: Vec::new() })
                .with_engine(Engine::Parallel { threads: 2, shards });
            sim.run_rounds(2).unwrap();
            for v in 1..6 {
                let expect: Vec<usize> = if [5, 2, 4].contains(&v) {
                    vec![0]
                } else {
                    vec![]
                };
                assert_eq!(sim.nodes()[v].heard, expect, "vertex {v} shards {shards}");
            }
            assert_eq!(sim.stats().total_messages, 3);
        }
    }

    #[test]
    fn run_rounds_executes_exact_count() {
        let g = generators::cycle(5);
        let mut sim = Simulator::new(&g, |_, _| FloodDist::fresh());
        let run = sim.run_rounds(3).unwrap();
        assert_eq!(run.rounds, 3);
        assert_eq!(sim.rounds_executed(), 3);
    }

    #[test]
    fn zero_round_budget_only_succeeds_when_quiescent() {
        let g = generators::path(2);
        let mut sim = Simulator::new(&g, |_, _| FloodDist::fresh());
        // Fresh simulator: inbox empty but dist=None nodes are not halted.
        assert_eq!(
            sim.run_to_quiescence(0).unwrap_err(),
            SimError::RoundLimitExceeded { limit: 0 }
        );
        sim.run_to_quiescence(5).unwrap();
        // Now quiescent: a zero budget is satisfied without stepping.
        let run = sim.run_to_quiescence(0).unwrap();
        assert_eq!(run.rounds, 0);
    }

    #[test]
    fn protocol_panic_propagates_instead_of_deadlocking_workers() {
        // A node panicking mid-round unwinds one worker while the others
        // sit at a phase barrier; the poisoned barrier must release them
        // so the panic propagates like it does on the sequential engine.
        #[derive(Debug, Clone)]
        struct PanicAt(usize);
        impl Protocol for PanicAt {
            fn start(&mut self, ctx: &Ctx<'_>, out: &mut Outbox) {
                assert!(ctx.id != self.0, "protocol bug at node {}", self.0);
                out.broadcast(Bytes::from_static(b"x"));
            }
            fn round(&mut self, _: &Ctx<'_>, _: Inbox<'_>, _: &mut Outbox) {}
        }
        let g = generators::grid2d(6, 6);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut sim = Simulator::new(&g, |_, _| PanicAt(30)).with_engine(Engine::Parallel {
                threads: 4,
                shards: 4,
            });
            let _ = sim.step();
        }));
        assert!(panicked.is_err());
    }

    #[test]
    fn resharding_mid_run_preserves_pending_messages() {
        // Step once sequentially (messages now in flight), then reshard;
        // the flood must still reach everyone with correct distances.
        let g = generators::grid2d(5, 4);
        let mut sim = Simulator::new(&g, |_, _| FloodDist::fresh());
        sim.step().unwrap();
        let mut sim = sim.with_engine(Engine::Parallel {
            threads: 2,
            shards: 5,
        });
        sim.run_to_quiescence(g.vertex_count()).unwrap();
        let dists: Vec<_> = sim.nodes().iter().map(|n| n.dist).collect();
        assert_eq!(dists, netdecomp_graph::bfs::distances(&g, 0));
    }

    #[test]
    fn empty_graph_steps_trivially() {
        let g = netdecomp_graph::Graph::empty(0);
        let mut sim = Simulator::new(&g, |_, _| FloodDist::fresh()).with_engine(Engine::Parallel {
            threads: 4,
            shards: 4,
        });
        let run = sim.run_to_quiescence(1).unwrap();
        assert_eq!(run.total_messages, 0);
        assert!(sim.is_quiescent());
    }

    #[test]
    fn ctx_exposes_neighbors() {
        let g = generators::star(4);
        let sim = Simulator::new(&g, |id, ctx| {
            if id == 0 {
                assert_eq!(ctx.degree(), 3);
                assert_eq!(ctx.neighbors(), &[1, 2, 3]);
            } else {
                assert_eq!(ctx.degree(), 1);
            }
            assert_eq!(ctx.n, 4);
            Shout { payload: 0 }
        });
        assert_eq!(sim.graph().vertex_count(), 4);
        assert!(!sim.is_quiescent() || sim.nodes().len() == 4);
    }

    #[test]
    fn engine_accessor_reports_configuration() {
        let g = generators::path(2);
        let engine = Engine::Parallel {
            threads: 2,
            shards: 2,
        };
        let sim = Simulator::new(&g, |_, _| BadAddress).with_engine(engine);
        assert_eq!(sim.engine(), engine);
        // Shards clamp to the vertex count.
        assert_eq!(sim.shard_plan().count(), 2);
    }

    impl Snapshot for FloodDist {
        fn save_state(&self) -> Bytes {
            let mut out = Vec::with_capacity(17);
            out.push(u8::from(self.dist.is_some()));
            out.extend_from_slice(&(self.dist.unwrap_or(0) as u64).to_le_bytes());
            out.extend_from_slice(&(self.rounds_seen as u64).to_le_bytes());
            Bytes::from(out)
        }

        fn load_state(&mut self, bytes: &[u8]) -> bool {
            if bytes.len() != 17 {
                return false;
            }
            let word = |at: usize| {
                u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes")) as usize
            };
            self.dist = (bytes[0] != 0).then(|| word(1));
            self.rounds_seen = word(9);
            true
        }
    }

    /// The tentpole invariant end to end, in process: snapshot every
    /// shard mid-run, rebuild a fresh simulator, restore + reposition,
    /// and the resumed run must finish bit-identically to the
    /// uninterrupted one.
    #[test]
    fn a_checkpoint_round_trip_resumes_bit_identically() {
        let g = generators::grid2d(5, 5);
        let engine = Engine::Parallel {
            threads: 2,
            shards: 3,
        };
        let cut = 3;
        let tail = 6;

        let mut full = Simulator::new(&g, |_, _| FloodDist::fresh()).with_engine(engine);
        full.run_rounds(cut).unwrap();
        let shards = full.shard_plan().count();
        let payloads: Vec<Vec<u8>> = (0..shards).map(|k| full.snapshot_shard(k)).collect();
        full.run_rounds(tail).unwrap();

        let mut resumed = Simulator::new(&g, |_, _| FloodDist::fresh()).with_engine(engine);
        for (k, payload) in payloads.iter().enumerate() {
            assert!(resumed.restore_shard(k, payload), "shard {k} restore");
        }
        resumed.resume_at(cut);
        resumed.run_rounds(tail).unwrap();

        assert_eq!(resumed.nodes(), full.nodes(), "resumed run diverged");
        assert_eq!(resumed.rounds_executed(), full.rounds_executed());
    }

    /// A corrupted payload is refused (`false`) instead of trusted or
    /// panicking, for any prefix truncation or byte flip.
    #[test]
    fn a_mangled_snapshot_payload_is_refused() {
        let g = generators::path(6);
        let mut sim = Simulator::new(&g, |_, _| FloodDist::fresh());
        sim.run_rounds(2).unwrap();
        let good = sim.snapshot_shard(0);
        assert!(sim.restore_shard(0, &good), "pristine payload restores");
        for cut in [0, 1, good.len() / 2, good.len().saturating_sub(1)] {
            assert!(!sim.restore_shard(0, &good[..cut]), "truncation at {cut}");
        }
        let mut flipped = good.clone();
        flipped[0] ^= 0xff;
        assert!(!sim.restore_shard(0, &flipped), "flipped node count");
    }
}

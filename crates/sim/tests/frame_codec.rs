//! Frame codec robustness: encode -> decode is the identity over
//! arbitrary bucket contents (empty buckets and multicast-heavy rounds
//! included), and malformed frames — truncated, version-mismatched,
//! checksum-corrupted — are rejected with typed [`FrameError`]s instead
//! of panicking.

use bytes::Bytes;
use proptest::prelude::*;

use netdecomp_sim::frame::{Frame, FrameBuilder};
use netdecomp_sim::FrameError;

/// One bucket entry for the roundtrip property: `share` reuses the
/// previous entry's payload (a multicast's later copies), so shrunken
/// cases still cover the payload-sharing path.
#[derive(Debug, Clone)]
struct Entry {
    from: u32,
    lo: u32,
    width: u32,
    payload: Vec<u8>,
    share: bool,
}

fn arb_entry() -> impl Strategy<Value = Entry> {
    (
        (0u32..10_000, 0u32..100_000, 0u32..64),
        proptest::collection::vec(0u8..=255, 0..48),
        0u32..2,
    )
        .prop_map(|((from, lo, width), payload, share)| Entry {
            from,
            lo,
            width,
            payload,
            share: share == 1,
        })
}

/// Expected decoded view of one ref: `(from, lo, hi, payload bytes)`.
type ExpectedRef = (u32, u32, u32, Vec<u8>);

/// Encodes `entries` and returns the frame plus the expected decoded view
/// per ref.
fn encode(sender: usize, dest: usize, entries: &[Entry]) -> (Bytes, Vec<ExpectedRef>) {
    let mut b = FrameBuilder::new();
    b.begin(sender, dest);
    let mut expected = Vec::new();
    let mut last_payload: Option<Vec<u8>> = None;
    for e in entries {
        let slots = e.lo as usize..(e.lo + e.width) as usize;
        match (&last_payload, e.share) {
            (Some(prev), true) => {
                b.push_shared(e.from as usize, slots);
                expected.push((e.from, e.lo, e.lo + e.width, prev.clone()));
            }
            _ => {
                b.push(e.from as usize, slots, &e.payload);
                expected.push((e.from, e.lo, e.lo + e.width, e.payload.clone()));
                last_payload = Some(e.payload.clone());
            }
        }
    }
    (b.finish(), expected)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// encode -> decode == identity: every ref comes back with its
    /// sender, slot range, and payload bytes intact, in order.
    #[test]
    fn roundtrip_is_identity(
        sender in 0usize..64,
        dest in 0usize..64,
        entries in proptest::collection::vec(arb_entry(), 0..24),
    ) {
        let (encoded, expected) = encode(sender, dest, &entries);
        let frame = Frame::decode(encoded).expect("own encoding decodes");
        prop_assert_eq!(frame.sender_shard(), sender);
        prop_assert_eq!(frame.dest_shard(), dest);
        prop_assert_eq!(frame.ref_count(), expected.len());
        let refs: Vec<_> = frame.refs().collect();
        for (r, (from, lo, hi, payload)) in refs.iter().zip(&expected) {
            prop_assert_eq!(r.from, *from);
            prop_assert_eq!(r.lo, *lo);
            prop_assert_eq!(r.hi, *hi);
            prop_assert_eq!(frame.payload(r.payload).as_slice(), &payload[..]);
        }
        // Shared payloads are stored once: consecutive share entries point
        // at the same payload-table index.
        for (i, e) in entries.iter().enumerate().skip(1) {
            if e.share {
                prop_assert_eq!(refs[i].payload, refs[i - 1].payload);
            }
        }
        prop_assert!(frame.payload_count() <= frame.ref_count().max(1));
    }

    /// Every strict prefix of a frame is rejected as truncated — never a
    /// panic, never a partial decode.
    #[test]
    fn truncation_is_rejected(
        entries in proptest::collection::vec(arb_entry(), 0..12),
        cut in 0.0f64..1.0,
    ) {
        let (encoded, _) = encode(1, 2, &entries);
        let keep = ((encoded.len() as f64) * cut) as usize; // < len
        let truncated = Bytes::from(encoded.as_slice()[..keep].to_vec());
        match Frame::decode(truncated) {
            Err(FrameError::Truncated { needed, have }) => {
                prop_assert_eq!(have, keep);
                prop_assert!(needed > have);
            }
            other => prop_assert!(false, "expected Truncated, got {:?}", other),
        }
    }

    /// Any bit flip in the header or tables is caught — by the magic,
    /// version, length, structural, or checksum check — before a single
    /// copy could be misdelivered.
    #[test]
    fn header_and_table_corruption_is_rejected(
        entries in proptest::collection::vec(arb_entry(), 0..12),
        pos_pick in 0u32..u32::MAX,
        bit in 0u8..8,
    ) {
        let (encoded, _) = encode(1, 2, &entries);
        let frame = Frame::decode(encoded.clone()).expect("valid before corruption");
        // Header + tables span everything before the payload region.
        let protected = encoded.len() - frame_payload_region_len(&frame);
        let pos = (pos_pick as usize) % protected;
        let mut bad = encoded.as_slice().to_vec();
        bad[pos] ^= 1 << bit;
        prop_assert!(
            Frame::decode(Bytes::from(bad)).is_err(),
            "flip at {} escaped validation", pos
        );
    }
}

/// Total bytes of the payload region (the only checksummed-exempt part).
fn frame_payload_region_len(frame: &Frame) -> usize {
    (0..frame.payload_count())
        .map(|i| frame.payload(i as u32).len())
        .sum()
}

#[test]
fn version_mismatch_is_reported_as_such() {
    let mut b = FrameBuilder::new();
    b.begin(0, 0);
    b.push(4, 7..9, b"payload");
    let encoded = b.finish();
    let mut bad = encoded.as_slice().to_vec();
    bad[3] = 9; // future format version
    assert_eq!(
        Frame::decode(Bytes::from(bad)),
        Err(FrameError::VersionMismatch {
            found: 9,
            expected: netdecomp_sim::frame::FRAME_VERSION,
        })
    );
}

#[test]
fn checksum_corruption_is_reported_as_such() {
    let mut b = FrameBuilder::new();
    b.begin(0, 0);
    b.push(4, 7..9, b"payload");
    let encoded = b.finish();
    let mut bad = encoded.as_slice().to_vec();
    bad[24] ^= 0x10; // the checksum word itself
    assert!(matches!(
        Frame::decode(Bytes::from(bad)),
        Err(FrameError::ChecksumMismatch { .. })
    ));
}

#[test]
fn trailing_bytes_are_rejected() {
    let mut b = FrameBuilder::new();
    b.begin(0, 0);
    let mut bytes = b.finish().as_slice().to_vec();
    bytes.push(0);
    assert!(matches!(
        Frame::decode(Bytes::from(bytes)),
        Err(FrameError::Malformed { .. })
    ));
}

#[test]
fn empty_input_is_truncated_not_a_panic() {
    assert_eq!(
        Frame::decode(Bytes::new()),
        Err(FrameError::Truncated {
            needed: 28,
            have: 0
        })
    );
    assert_eq!(
        Frame::decode(Bytes::from_static(b"NDF")),
        Err(FrameError::Truncated {
            needed: 28,
            have: 3
        })
    );
}

#[test]
fn wrong_magic_is_rejected() {
    assert_eq!(
        Frame::decode(Bytes::from(vec![0u8; 28])),
        Err(FrameError::BadMagic)
    );
}

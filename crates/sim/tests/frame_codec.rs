//! Frame codec robustness: encode -> decode is the identity over
//! arbitrary bucket contents (empty buckets and multicast-heavy rounds
//! included) in *every* wire format this build encodes — v1 byte-serial,
//! v2 word-parallel, v2 with payload coverage — and malformed frames —
//! truncated, version-mismatched, checksum-corrupted — are rejected with
//! typed [`FrameError`]s instead of panicking. The v2 digest is pinned
//! against an independent per-lane serial reference and against
//! hard-coded byte vectors, so an accidental format change fails loudly
//! here before it strands persisted frames.

use bytes::Bytes;
use proptest::prelude::*;

use netdecomp_sim::frame::{Frame, FrameBuilder, FrameConfig, FRAME_VERSION, FRAME_VERSION_MIN};
use netdecomp_sim::FrameError;

/// The three encode configurations this build can produce.
fn all_configs() -> [FrameConfig; 3] {
    [
        FrameConfig {
            version: 1,
            cover_payload: false,
        },
        FrameConfig {
            version: 2,
            cover_payload: false,
        },
        FrameConfig {
            version: 2,
            cover_payload: true,
        },
    ]
}

/// One bucket entry for the roundtrip property: `share` reuses the
/// previous entry's payload (a multicast's later copies), so shrunken
/// cases still cover the payload-sharing path.
#[derive(Debug, Clone)]
struct Entry {
    from: u32,
    lo: u32,
    width: u32,
    payload: Vec<u8>,
    share: bool,
}

fn arb_entry() -> impl Strategy<Value = Entry> {
    (
        (0u32..10_000, 0u32..100_000, 0u32..64),
        proptest::collection::vec(0u8..=255, 0..48),
        0u32..2,
    )
        .prop_map(|((from, lo, width), payload, share)| Entry {
            from,
            lo,
            width,
            payload,
            share: share == 1,
        })
}

/// Expected decoded view of one ref: `(from, lo, hi, payload bytes)`.
type ExpectedRef = (u32, u32, u32, Vec<u8>);

/// Encodes `entries` under `config` and returns the frame plus the
/// expected decoded view per ref.
fn encode_with(
    config: FrameConfig,
    sender: usize,
    dest: usize,
    entries: &[Entry],
) -> (Bytes, Vec<ExpectedRef>) {
    let mut b = FrameBuilder::new().with_config(config);
    b.begin(sender, dest);
    let mut expected = Vec::new();
    let mut last_payload: Option<Vec<u8>> = None;
    for e in entries {
        let slots = e.lo as usize..(e.lo + e.width) as usize;
        match (&last_payload, e.share) {
            (Some(prev), true) => {
                b.push_shared(e.from as usize, slots);
                expected.push((e.from, e.lo, e.lo + e.width, prev.clone()));
            }
            _ => {
                b.push(e.from as usize, slots, &e.payload);
                expected.push((e.from, e.lo, e.lo + e.width, e.payload.clone()));
                last_payload = Some(e.payload.clone());
            }
        }
    }
    (b.finish(), expected)
}

/// Header length of an encoded frame (32 for v2, 28 for v1).
fn header_len(encoded: &Bytes) -> usize {
    if encoded.as_slice()[3] >= 2 {
        32
    } else {
        28
    }
}

/// The byte ranges a frame's digest covers, concatenated: header without
/// the checksum word (plus the v2 flags word), then the tables, then —
/// under payload coverage — the payload region. This re-derives the
/// covered stream from the wire bytes alone, independent of the codec.
fn covered_stream(encoded: &Bytes, frame: &Frame) -> Vec<u8> {
    let data = encoded.as_slice();
    let head = header_len(encoded);
    // Table sizes are part of the pinned format: 16 bytes per ref entry,
    // 8 per payload entry.
    let tables = frame.ref_count() * 16 + frame.payload_count() * 8;
    let mut stream = Vec::new();
    stream.extend_from_slice(&data[..24]);
    stream.extend_from_slice(&data[28..head]);
    stream.extend_from_slice(&data[head..head + tables]);
    if frame.covers_payload() {
        stream.extend_from_slice(&data[head + tables..]);
        while stream.len() % 4 != 0 {
            stream.push(0); // the codec zero-pads the payload tail word
        }
    }
    stream
}

/// Independent per-lane serial reference of the v2 digest: word `i` of
/// the covered stream folds into lane `i mod 4`, one word at a time (no
/// unrolled blocks — this deliberately mirrors the *specification*, not
/// the implementation's peel/block/tail structure).
fn reference_lane_digest(stream: &[u8]) -> u32 {
    assert_eq!(stream.len() % 4, 0, "covered stream is word-aligned");
    const INIT: u32 = 0x811c_9dc5;
    const PRIME: u32 = 0x0100_0193;
    const STRIDE: u32 = 0x9E37_79B9;
    let mut lanes = [0u32; 4];
    for (i, lane) in lanes.iter_mut().enumerate() {
        *lane = INIT.wrapping_add((i as u32).wrapping_mul(STRIDE));
    }
    for (i, word) in stream.chunks_exact(4).enumerate() {
        let w = u32::from_le_bytes(word.try_into().expect("4 bytes"));
        let lane = &mut lanes[i % 4];
        *lane = (*lane ^ w).wrapping_mul(PRIME);
    }
    let mut h = INIT;
    for lane in lanes {
        h = (h ^ lane).wrapping_mul(PRIME);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// encode -> decode == identity in every wire format: every ref comes
    /// back with its sender, slot range, and payload bytes intact, in
    /// order, and the decoded frame reports the version and coverage it
    /// was encoded with.
    #[test]
    fn roundtrip_is_identity(
        sender in 0usize..64,
        dest in 0usize..64,
        entries in proptest::collection::vec(arb_entry(), 0..24),
        config_pick in 0usize..3,
    ) {
        let config = all_configs()[config_pick];
        let (encoded, expected) = encode_with(config, sender, dest, &entries);
        let frame = Frame::decode(encoded).expect("own encoding decodes");
        prop_assert_eq!(frame.version(), config.version);
        prop_assert_eq!(frame.covers_payload(), config.cover_payload);
        prop_assert_eq!(frame.sender_shard(), sender);
        prop_assert_eq!(frame.dest_shard(), dest);
        prop_assert_eq!(frame.ref_count(), expected.len());
        let refs: Vec<_> = frame.refs().collect();
        for (r, (from, lo, hi, payload)) in refs.iter().zip(&expected) {
            prop_assert_eq!(r.from, *from);
            prop_assert_eq!(r.lo, *lo);
            prop_assert_eq!(r.hi, *hi);
            prop_assert_eq!(frame.payload(r.payload).as_slice(), &payload[..]);
        }
        // Shared payloads are stored once: consecutive share entries point
        // at the same payload-table index.
        for (i, e) in entries.iter().enumerate().skip(1) {
            if e.share {
                prop_assert_eq!(refs[i].payload, refs[i - 1].payload);
            }
        }
        prop_assert!(frame.payload_count() <= frame.ref_count().max(1));
    }

    /// The wire checksum of every v2 frame equals the independent
    /// per-lane serial reference over the covered stream — pinning lane
    /// striping, seeds, zero-padding, and the final lane fold against the
    /// unrolled implementation.
    #[test]
    fn lane_digest_matches_per_lane_serial_reference(
        sender in 0usize..64,
        dest in 0usize..64,
        entries in proptest::collection::vec(arb_entry(), 0..24),
        cover in 0u32..2,
    ) {
        let config = FrameConfig { version: 2, cover_payload: cover == 1 };
        let (encoded, _) = encode_with(config, sender, dest, &entries);
        let frame = Frame::decode(encoded.clone()).expect("own encoding decodes");
        let declared = u32::from_le_bytes(
            encoded.as_slice()[24..28].try_into().expect("4 bytes"),
        );
        let stream = covered_stream(&encoded, &frame);
        prop_assert_eq!(declared, reference_lane_digest(&stream));
    }

    /// Flipping any single bit of any covered word — every position in
    /// all four lanes — changes the v2 digest: every fold is bijective on
    /// its lane, so no flip can cancel. With payload coverage on, the
    /// covered region is the entire frame.
    #[test]
    fn lane_digest_detects_single_bit_flips_in_every_lane_position(
        entries in proptest::collection::vec(arb_entry(), 0..12),
        pos_pick in 0u32..u32::MAX,
        bit in 0u8..8,
    ) {
        let config = FrameConfig { version: 2, cover_payload: true };
        let (encoded, _) = encode_with(config, 1, 2, &entries);
        // Skip the checksum word itself — the one uncovered span.
        // (Flipping it is caught as a mismatch too, but by the other side
        // of the comparison.)
        let pos = match (pos_pick as usize) % (encoded.len() - 4) {
            p if p >= 24 => p + 4,
            p => p,
        };
        let mut bad = encoded.as_slice().to_vec();
        bad[pos] ^= 1 << bit;
        prop_assert!(
            Frame::decode(Bytes::from(bad)).is_err(),
            "covered flip at byte {} (lane {}) escaped validation",
            pos,
            (pos / 4) % 4
        );
    }

    /// Every strict prefix of a frame is rejected as truncated — never a
    /// panic, never a partial decode — in every wire format.
    #[test]
    fn truncation_is_rejected(
        entries in proptest::collection::vec(arb_entry(), 0..12),
        cut in 0.0f64..1.0,
        config_pick in 0usize..3,
    ) {
        let (encoded, _) = encode_with(all_configs()[config_pick], 1, 2, &entries);
        let keep = ((encoded.len() as f64) * cut) as usize; // < len
        let truncated = Bytes::from(encoded.as_slice()[..keep].to_vec());
        match Frame::decode(truncated) {
            Err(FrameError::Truncated { needed, have }) => {
                prop_assert_eq!(have, keep);
                prop_assert!(needed > have);
            }
            other => prop_assert!(false, "expected Truncated, got {:?}", other),
        }
    }

    /// Any bit flip in the header or tables is caught — by the magic,
    /// version, length, structural, or checksum check — before a single
    /// copy could be misdelivered, in every wire format.
    #[test]
    fn header_and_table_corruption_is_rejected(
        entries in proptest::collection::vec(arb_entry(), 0..12),
        pos_pick in 0u32..u32::MAX,
        bit in 0u8..8,
        config_pick in 0usize..3,
    ) {
        let (encoded, _) = encode_with(all_configs()[config_pick], 1, 2, &entries);
        let frame = Frame::decode(encoded.clone()).expect("valid before corruption");
        // Header + tables span everything before the payload region.
        let protected = encoded.len() - frame_payload_region_len(&frame);
        let pos = (pos_pick as usize) % protected;
        let mut bad = encoded.as_slice().to_vec();
        bad[pos] ^= 1 << bit;
        prop_assert!(
            Frame::decode(Bytes::from(bad)).is_err(),
            "flip at {} escaped validation", pos
        );
    }
}

/// Total bytes of the payload region (exempt from the digest unless the
/// frame was encoded with payload coverage).
fn frame_payload_region_len(frame: &Frame) -> usize {
    (0..frame.payload_count())
        .map(|i| frame.payload(i as u32).len())
        .sum()
}

/// A fixed single-ref bucket used by the deterministic tests below.
fn fixed_frame(config: FrameConfig) -> Bytes {
    let mut b = FrameBuilder::new().with_config(config);
    b.begin(1, 2);
    b.push(4, 7..9, b"netdecomp");
    b.finish()
}

/// One decoder accepts every format this build (and the previous one)
/// encodes: the cross-decode matrix over {v1, v2, v2+cover}.
#[test]
fn every_encode_config_decodes_with_the_same_decoder() {
    for config in all_configs() {
        let encoded = fixed_frame(config);
        let frame = Frame::decode(encoded.clone())
            .unwrap_or_else(|e| panic!("config {config:?} failed to decode: {e}"));
        assert_eq!(frame.version(), config.version);
        assert_eq!(frame.covers_payload(), config.cover_payload);
        assert_eq!(frame.sender_shard(), 1);
        assert_eq!(frame.dest_shard(), 2);
        assert_eq!(frame.ref_count(), 1);
        let r = frame.refs().next().expect("one ref");
        assert_eq!((r.from, r.lo, r.hi), (4, 7, 9));
        assert_eq!(frame.payload(r.payload).as_slice(), b"netdecomp");
        // v1 and v2 carry the same logical content at different header
        // lengths: 28 + tables + payload vs 32 + tables + payload.
        let expected_len = header_len(&encoded) + 16 + 8 + b"netdecomp".len();
        assert_eq!(encoded.len(), expected_len);
    }
}

/// Versions outside `FRAME_VERSION_MIN..=FRAME_VERSION` — older than v1
/// or newer than v2 — are rejected with the accepted range, whose
/// message names both ends (see also the display test in `error.rs`).
#[test]
fn version_mismatch_is_reported_as_such() {
    for found in [0u8, 9] {
        let encoded = fixed_frame(FrameConfig::default());
        let mut bad = encoded.as_slice().to_vec();
        bad[3] = found;
        let err = Frame::decode(Bytes::from(bad)).expect_err("out-of-range version");
        assert_eq!(
            err,
            FrameError::VersionMismatch {
                found,
                min: FRAME_VERSION_MIN,
                max: FRAME_VERSION,
            }
        );
        let msg = err.to_string();
        assert!(msg.contains(&format!("version {found}")), "got: {msg}");
        assert!(msg.contains("v1 through v2"), "got: {msg}");
    }
}

#[test]
fn checksum_corruption_is_reported_as_such() {
    for config in all_configs() {
        let encoded = fixed_frame(config);
        let mut bad = encoded.as_slice().to_vec();
        bad[24] ^= 0x10; // the checksum word itself
        assert!(matches!(
            Frame::decode(Bytes::from(bad)),
            Err(FrameError::ChecksumMismatch { .. })
        ));
    }
}

#[test]
fn trailing_bytes_are_rejected() {
    for config in all_configs() {
        let mut b = FrameBuilder::new().with_config(config);
        b.begin(0, 0);
        let mut bytes = b.finish().as_slice().to_vec();
        bytes.push(0);
        assert!(matches!(
            Frame::decode(Bytes::from(bytes)),
            Err(FrameError::Malformed { .. })
        ));
    }
}

#[test]
fn empty_input_is_truncated_not_a_panic() {
    // The fixed fields shared by both versions fit in 28 bytes, so that
    // is the minimum before a frame's version (and thus its true header
    // length) can even be read.
    assert_eq!(
        Frame::decode(Bytes::new()),
        Err(FrameError::Truncated {
            needed: 28,
            have: 0
        })
    );
    assert_eq!(
        Frame::decode(Bytes::from_static(b"NDF")),
        Err(FrameError::Truncated {
            needed: 28,
            have: 3
        })
    );
}

#[test]
fn wrong_magic_is_rejected() {
    assert_eq!(
        Frame::decode(Bytes::from(vec![0u8; 28])),
        Err(FrameError::BadMagic)
    );
}

/// Pinned wire-format vectors: the exact bytes both formats produce for
/// the fixed bucket above. A failure here means the wire format changed
/// — which requires a version bump, not a test update.
#[test]
fn wire_format_vectors_are_pinned() {
    let v1 = fixed_frame(FrameConfig {
        version: 1,
        cover_payload: false,
    });
    let v2 = fixed_frame(FrameConfig {
        version: 2,
        cover_payload: false,
    });
    let v2c = fixed_frame(FrameConfig {
        version: 2,
        cover_payload: true,
    });
    assert_eq!(hex(&v1), V1_VECTOR);
    assert_eq!(hex(&v2), V2_VECTOR);
    assert_eq!(hex(&v2c), V2_COVER_VECTOR);
}

fn hex(bytes: &Bytes) -> String {
    bytes
        .as_slice()
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect()
}

const V1_VECTOR: &str = "4e4446013d0000000100000002000000010000000100000063565cce0400000000000000070000000900000000000000090000006e65746465636f6d70";
const V2_VECTOR: &str = "4e4446024100000001000000020000000100000001000000caf0a5be000000000400000000000000070000000900000000000000090000006e65746465636f6d70";
const V2_COVER_VECTOR: &str = "4e44460241000000010000000200000001000000010000004033bc3e010000000400000000000000070000000900000000000000090000006e65746465636f6d70";

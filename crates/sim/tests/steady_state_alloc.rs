//! Steady-state rounds must not allocate: outboxes, the per-shard
//! slab-backed inboxes — the compact slot vector, the payload slab, and
//! the payload-handle table it recycles — counters, and cursor tables are
//! all reused in place. Registering a payload in a warm slab is a push
//! within capacity; scattering a copy is a plain 8-byte slot write. This
//! pins the "inbox slot reuse" guarantee with a counting global allocator
//! rather than by inspection, for every delivery backend.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use bytes::Bytes;
use netdecomp_graph::generators;
use netdecomp_sim::{Ctx, Engine, FrameTransport, Inbox, Outbox, Protocol, Simulator};

/// System allocator that counts every allocation (including reallocs).
struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Constant-volume workload: every node broadcasts the same preencoded
/// payload each round (a reference-count bump, not an allocation) and
/// reads everything it hears.
#[derive(Debug, Clone)]
struct SteadyBroadcast {
    payload: Bytes,
    heard: usize,
}

impl Protocol for SteadyBroadcast {
    fn start(&mut self, _ctx: &Ctx<'_>, out: &mut Outbox) {
        out.broadcast(self.payload.clone());
    }

    fn round(&mut self, _ctx: &Ctx<'_>, incoming: Inbox<'_>, out: &mut Outbox) {
        self.heard += incoming.len();
        out.broadcast(self.payload.clone());
    }
}

/// Warm the simulator past every buffer's high-water mark (including the
/// engine's amortized per-round stats vector), then require a window of
/// further rounds to allocate nothing at all. `overlap` pins the framed
/// round schedule (fused single-barrier vs phase-separated) explicitly,
/// so both stay zero-alloc regardless of the environment default; it is
/// a no-op for shared-memory engines.
fn assert_steady_state_is_allocation_free(engine: Engine, overlap: bool) {
    let g = generators::grid2d(12, 12);
    let mut sim = Simulator::new(&g, |id, _| SteadyBroadcast {
        payload: Bytes::from(vec![id as u8; 8]),
        heard: 0,
    })
    .with_engine(engine)
    .with_overlap(overlap);
    // 300 rounds leave the per-round stats vector with capacity >= 512,
    // so the 100 measured rounds cannot trigger its amortized growth.
    for _ in 0..300 {
        sim.step().expect("no limits configured");
    }
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..100 {
        sim.step().expect("no limits configured");
    }
    let during = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(
        during, 0,
        "steady-state rounds allocated {during} times under {engine:?}"
    );
    assert!(sim.nodes().iter().all(|n| n.heard > 0));
    // The slab registers payloads per *message*, never per copy: every
    // broadcast lands one segment ref — and therefore one registration —
    // per destination shard it touches, while each of the 2m copies is
    // only an 8-byte slot write.
    let work = sim.delivery_work();
    assert_eq!(work.payload_registrations, work.refs_scanned);
    assert_eq!(work.copies_delivered, 2 * g.edge_count());
    assert!(work.payload_registrations < work.copies_delivered);
    assert_eq!(work.inbox_slot_bytes, 8 * work.copies_delivered);
}

#[test]
fn sequential_steady_state_rounds_do_not_allocate() {
    assert_steady_state_is_allocation_free(Engine::Sequential, true);
}

#[test]
fn sharded_steady_state_rounds_do_not_allocate() {
    // Single worker thread (no per-round thread spawns — the vendored
    // rayon shim's scoped threads are the one remaining per-round
    // allocation under multi-threaded engines, see ROADMAP), but the full
    // sharded delivery path — sender-side routing included — with several
    // shards.
    assert_steady_state_is_allocation_free(
        Engine::Parallel {
            threads: 1,
            shards: 4,
        },
        true,
    );
}

#[test]
fn framed_loopback_overlapped_steady_state_rounds_do_not_allocate() {
    // The whole frame seam — encode (with checksum), loopback handoff,
    // decode, zero-copy payload slicing — must recycle every buffer:
    // builders keep their scratch, senders reclaim frame buffers through
    // the two-round ring, and receivers reuse their gather/decode tables.
    // Under the (default) overlapped schedule, shipping from inside the
    // fused compute phase must not add so much as a counter allocation.
    assert_steady_state_is_allocation_free(
        Engine::Framed {
            threads: 1,
            shards: 4,
            transport: FrameTransport::Loopback,
        },
        true,
    );
}

#[test]
fn framed_loopback_phase_separated_steady_state_rounds_do_not_allocate() {
    // Same guarantee with the overlap disabled (the pre-v2 schedule,
    // still selectable via NETDECOMP_FRAME_OVERLAP=0).
    assert_steady_state_is_allocation_free(
        Engine::Framed {
            threads: 1,
            shards: 4,
            transport: FrameTransport::Loopback,
        },
        false,
    );
}

#[test]
fn traced_framed_steady_state_rounds_do_not_allocate() {
    // The trace plane must be free in steady state too: rings are
    // preallocated at construction and commits overwrite slots in place,
    // so enabling per-round phase timing adds clock reads but not a
    // single allocation per round.
    const WINDOW: usize = 32;
    let g = generators::grid2d(12, 12);
    let mut sim = Simulator::new(&g, |id, _| SteadyBroadcast {
        payload: Bytes::from(vec![id as u8; 8]),
        heard: 0,
    })
    .with_engine(Engine::Framed {
        threads: 1,
        shards: 4,
        transport: FrameTransport::Loopback,
    })
    .with_overlap(true)
    .with_trace(WINDOW);
    assert!(sim.trace_enabled());
    for _ in 0..300 {
        sim.step().expect("no limits configured");
    }
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..100 {
        sim.step().expect("no limits configured");
    }
    let during = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(
        during, 0,
        "traced steady-state rounds allocated {during} times"
    );
    // Snapshotting allocates, so inspect the rings only after the
    // measured window: every shard retains its last WINDOW rounds with
    // nonzero phase timings.
    let traces = sim.flight_traces();
    assert_eq!(traces.len(), 4, "every shard ring must be enabled");
    for (shard, records) in traces {
        assert_eq!(records.len(), WINDOW, "shard {shard} ring must be full");
        let last = records.last().expect("ring is full");
        assert_eq!(last.round, 399, "shard {shard} must hold the last round");
        assert!(
            records.iter().all(|r| r.busy_ns() > 0),
            "shard {shard} records must carry phase timings"
        );
        assert!(
            records.windows(2).all(|w| w[0].round + 1 == w[1].round),
            "shard {shard} records must be chronological"
        );
    }
}

/// Unicast workload rotating through each node's neighbors: exercises the
/// router's flat vertex→shard path with per-round-varying bucket sizes
/// (the rotation cycles within the warmup, so every bucket's high-water
/// mark is reached before measuring).
#[derive(Debug, Clone)]
struct SteadyUnicast {
    payload: Bytes,
    tick: usize,
}

impl Protocol for SteadyUnicast {
    fn start(&mut self, ctx: &Ctx<'_>, out: &mut Outbox) {
        out.unicast(ctx.neighbors()[0], self.payload.clone());
    }

    fn round(&mut self, ctx: &Ctx<'_>, _incoming: Inbox<'_>, out: &mut Outbox) {
        self.tick += 1;
        out.unicast(
            ctx.neighbors()[self.tick % ctx.degree()],
            self.payload.clone(),
        );
    }
}

fn assert_unicast_steady_state_is_allocation_free(engine: Engine, overlap: bool) {
    let g = generators::grid2d(12, 12);
    let mut sim = Simulator::new(&g, |id, _| SteadyUnicast {
        payload: Bytes::from(vec![id as u8; 8]),
        tick: id,
    })
    .with_engine(engine)
    .with_overlap(overlap);
    for _ in 0..300 {
        sim.step().expect("no limits configured");
    }
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..100 {
        sim.step().expect("no limits configured");
    }
    let during = ALLOCATIONS.load(Ordering::SeqCst) - before;
    assert_eq!(
        during, 0,
        "unicast steady-state rounds allocated {during} times under {engine:?}"
    );
    // One unicast per node per round: refs, registrations, copies, and
    // slots all sit at exactly n.
    let work = sim.delivery_work();
    let n = g.vertex_count();
    assert_eq!(work.payload_registrations, n);
    assert_eq!(work.refs_scanned, n);
    assert_eq!(work.copies_delivered, n);
    assert_eq!(work.inbox_slot_bytes, 8 * n);
}

#[test]
fn sharded_unicast_steady_state_rounds_do_not_allocate() {
    assert_unicast_steady_state_is_allocation_free(
        Engine::Parallel {
            threads: 1,
            shards: 8,
        },
        true,
    );
}

#[test]
fn framed_loopback_unicast_steady_state_rounds_do_not_allocate() {
    // Per-round-varying bucket (and therefore frame) sizes: the rotation
    // cycles within the warmup, so every frame buffer's high-water size
    // is reached before measuring — under both round schedules.
    for overlap in [true, false] {
        assert_unicast_steady_state_is_allocation_free(
            Engine::Framed {
                threads: 1,
                shards: 8,
                transport: FrameTransport::Loopback,
            },
            overlap,
        );
    }
}

#[test]
fn framed_channel_allocations_are_bounded_per_round() {
    // The channel backend's mpsc mailboxes allocate queue nodes per send,
    // so it cannot be zero-alloc — but its per-round allocation count
    // must be bounded by the shard topology (shards^2 sends per round),
    // NOT by traffic volume: frame buffers, builder scratch, and inbox
    // slots are all still recycled.
    const SHARDS: usize = 4;
    let g = generators::grid2d(12, 12);
    let mut sim = Simulator::new(&g, |id, _| SteadyBroadcast {
        payload: Bytes::from(vec![id as u8; 8]),
        heard: 0,
    })
    .with_engine(Engine::Framed {
        threads: 1,
        shards: SHARDS,
        transport: FrameTransport::Channel,
    });
    for _ in 0..300 {
        sim.step().expect("no limits configured");
    }
    const ROUNDS: usize = 100;
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..ROUNDS {
        sim.step().expect("no limits configured");
    }
    let during = ALLOCATIONS.load(Ordering::SeqCst) - before;
    // Ceiling: a small constant per (sender, destination) pair per round.
    // The grid workload delivers ~550 copies per round, so a leak that
    // scaled with traffic would blow far past this.
    let ceiling = ROUNDS * (4 * SHARDS * SHARDS);
    assert!(
        during <= ceiling,
        "channel rounds allocated {during} times (ceiling {ceiling})"
    );
    assert!(sim.nodes().iter().all(|n| n.heard > 0));
}

//! Property-based tests for the round engine: flooding computes BFS
//! distances, accounting is self-consistent, budgets are enforced, and the
//! parallel engine is bit-identical to the sequential reference.

use bytes::Bytes;
use proptest::prelude::*;

use netdecomp_graph::{bfs, Graph, GraphBuilder};
use netdecomp_sim::{
    CongestLimit, Ctx, Determinism, Engine, FrameTransport, Inbox, Outbox, Protocol, Simulator,
};

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2usize..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(2 * n)).prop_map(move |pairs| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in pairs {
                if u != v {
                    b.add_edge(u, v).expect("in range");
                }
            }
            b.build()
        })
    })
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Flood {
    root: usize,
    dist: Option<usize>,
    clock: usize,
}

impl Protocol for Flood {
    fn start(&mut self, ctx: &Ctx<'_>, out: &mut Outbox) {
        if ctx.id == self.root {
            self.dist = Some(0);
            out.broadcast(Bytes::from_static(b"x"));
        }
    }

    fn round(&mut self, _ctx: &Ctx<'_>, incoming: Inbox<'_>, out: &mut Outbox) {
        self.clock += 1;
        if self.dist.is_none() && !incoming.is_empty() {
            self.dist = Some(self.clock);
            out.broadcast(Bytes::from_static(b"x"));
        }
    }

    fn is_halted(&self) -> bool {
        true
    }
}

/// A deterministic but messier protocol for the equivalence property:
/// relays a running XOR of everything heard, with payload sizes and
/// unicast/multicast/broadcast choice depending on seed-derived per-node
/// state — all three message kinds cross the sharded delivery path.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Mixer {
    acc: u64,
    budget: usize,
    quirk: u64,
}

impl Mixer {
    fn new(id: usize, seed: u64) -> Self {
        let quirk = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(id as u64);
        Mixer {
            acc: quirk,
            budget: 2 + (quirk % 3) as usize,
            quirk,
        }
    }
}

impl Protocol for Mixer {
    fn start(&mut self, _ctx: &Ctx<'_>, out: &mut Outbox) {
        out.broadcast(Bytes::from(self.acc.to_le_bytes().to_vec()));
    }

    fn round(&mut self, ctx: &Ctx<'_>, incoming: Inbox<'_>, out: &mut Outbox) {
        for m in incoming.iter() {
            let mut word = [0u8; 8];
            word.copy_from_slice(&m.payload()[..8]);
            // Rotate-then-xor makes the fold sensitive to delivery
            // *order*, not just to the delivered multiset, so a backend
            // that reordered an inbox could not sneak past the property.
            self.acc = self
                .acc
                .rotate_left(5)
                .wrapping_add(u64::from_le_bytes(word).rotate_left((m.from() % 7) as u32));
        }
        if self.budget > 0 && !incoming.is_empty() {
            self.budget -= 1;
            let payload = Bytes::from(self.acc.to_le_bytes().to_vec());
            let degree = ctx.degree() as u64;
            match self.quirk % 3 {
                0 if degree > 0 => {
                    let target = ctx.neighbors()[(self.acc % degree) as usize];
                    out.unicast(target, payload);
                }
                1 if degree > 0 => {
                    // Multicast to two seed-derived positions (possibly the
                    // same neighbor twice — two copies, like two unicasts).
                    let a = ctx.neighbors()[(self.acc % degree) as usize];
                    let b = ctx.neighbors()[(self.acc.rotate_right(17) % degree) as usize];
                    out.multicast(vec![a, b], payload);
                }
                _ => out.broadcast(payload),
            }
        }
    }

    fn is_halted(&self) -> bool {
        self.budget == 0
    }
}

proptest! {
    // 48 cases keep each delivery backend (shared-memory, framed
    // loopback, framed channel, framed socket) at useful coverage in the
    // equivalence property below.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn flooding_equals_bfs_on_arbitrary_graphs(g in arb_graph(30), root_pick in 0usize..30) {
        let n = g.vertex_count();
        let root = root_pick % n;
        let mut sim = Simulator::new(&g, |_, _| Flood { root, dist: None, clock: 0 });
        // n+1 rounds always suffice for a flood plus drain.
        sim.run_rounds(n + 1).expect("no limits");
        let expected = bfs::distances(&g, root);
        for (v, want) in expected.iter().enumerate() {
            prop_assert_eq!(sim.nodes()[v].dist, *want, "vertex {}", v);
        }
    }

    #[test]
    fn run_stats_totals_match_per_round_sums(g in arb_graph(24)) {
        let mut sim = Simulator::new(&g, |_, _| Flood { root: 0, dist: None, clock: 0 });
        let run = sim.run_rounds(g.vertex_count() + 1).expect("no limits");
        let msg_sum: usize = run.per_round.iter().map(|r| r.messages).sum();
        let byte_sum: usize = run.per_round.iter().map(|r| r.bytes).sum();
        prop_assert_eq!(run.total_messages, msg_sum);
        prop_assert_eq!(run.total_bytes, byte_sum);
        let max_edge = run.per_round.iter().map(|r| r.max_edge_bytes).max().unwrap_or(0);
        prop_assert_eq!(run.max_edge_bytes, max_edge);
        // Each flood message is one byte; every vertex broadcasts at most
        // once, so total messages <= 2m.
        prop_assert!(run.total_messages <= 2 * g.edge_count());
    }

    #[test]
    fn one_byte_messages_never_violate_one_byte_budget(g in arb_graph(20)) {
        let mut sim = Simulator::new(&g, |_, _| Flood { root: 0, dist: None, clock: 0 })
            .with_limit(CongestLimit::PerEdgeBytes(1));
        // The flood sends at most one 1-byte message per edge per round.
        prop_assert!(sim.run_rounds(g.vertex_count() + 1).is_ok());
    }

    /// The tentpole guarantee: across random graphs, seeds, thread counts,
    /// shard counts, delivery backends, and CONGEST limits, the sharded
    /// parallel engine — delivery included, whether it reads in-memory
    /// buckets or decoded transport frames — produces bit-identical node
    /// states and `RunStats` to the sequential reference.
    #[test]
    fn parallel_engine_is_bit_identical_to_sequential(
        g in arb_graph(24),
        seed in 0u64..1_000,
        threads in 2usize..=8,
        shard_pick in 0usize..6,
        limit_pick in 0usize..3,
        backend_pick in 0usize..4,
        overlap in 0u32..2,
    ) {
        let limit = match limit_pick {
            0 => CongestLimit::Unlimited,
            1 => CongestLimit::PerEdgeBytes(64),
            _ => CongestLimit::STANDARD_WORDS,
        };
        // Below, at, and above the thread count, primes that divide
        // nothing (7, 13 — 13 usually exceeds n/2 here, so many shards
        // hold one or two vertices and routing segments get maximally
        // fragmented), one shard per vertex, and `0` = the resolved
        // default (NETDECOMP_SHARDS when set — which is how the CI matrix
        // entries reach this property — else threads).
        let shards = [0, 1, 2, 7, 13, g.vertex_count()][shard_pick];
        // Shared-memory delivery (or whatever NETDECOMP_BACKEND selects —
        // the framed CI matrix entry reaches this property through the
        // `Parallel` arm), framed loopback, framed channels, and the
        // socket fabric (real Unix-domain streams through the hub).
        let engine = match backend_pick {
            0 => Engine::Parallel { threads, shards },
            _ => Engine::Framed {
                threads,
                shards,
                transport: match backend_pick {
                    1 => FrameTransport::Loopback,
                    2 => FrameTransport::Channel,
                    _ => FrameTransport::Socket,
                },
            },
        };
        let rounds = g.vertex_count().min(12) + 2;

        let mut seq = Simulator::new(&g, |id, _| Mixer::new(id, seed)).with_limit(limit);
        // The overlapped (fused compute/account/ship, one barrier) and
        // phase-separated framed schedules must be indistinguishable;
        // `with_overlap` is a no-op for shared-memory backends, so the
        // sweep costs the `Parallel` arm nothing.
        let mut par = Simulator::new(&g, |id, _| Mixer::new(id, seed))
            .with_limit(limit)
            .with_engine(engine)
            .with_overlap(overlap == 1);

        let a = seq.run_rounds(rounds);
        // Verified stepping doubles as a scheduling-independence check: it
        // also cross-checks sharded delivery against a sequential merge.
        let b = par.run_rounds_with(rounds, Determinism::Verify);
        prop_assert_eq!(&a, &b, "run outcome diverged");
        if a.is_ok() {
            prop_assert_eq!(seq.nodes(), par.nodes(), "node states diverged");
            prop_assert_eq!(seq.stats(), par.stats(), "stats diverged");
            prop_assert_eq!(seq.is_quiescent(), par.is_quiescent());
            // The inboxes themselves — not just protocol results — must
            // match the sequential reference per vertex, message for
            // message and in order, across the slab-backed representation
            // of every backend (the slot/payload-id layout may differ per
            // shard plan; the resolved view must not).
            for v in 0..g.vertex_count() {
                let resolve = |m: netdecomp_sim::IncomingRef<'_>| (m.from(), m.payload().to_vec());
                let seq_inbox: Vec<_> = seq.incoming(v).iter().map(resolve).collect();
                let par_inbox: Vec<_> = par.incoming(v).iter().map(resolve).collect();
                prop_assert_eq!(seq_inbox, par_inbox, "vertex {} inbox diverged", v);
            }
        }
    }
}

//! Property-based tests for the round engine: flooding computes BFS
//! distances, accounting is self-consistent, budgets are enforced.

use bytes::Bytes;
use proptest::prelude::*;

use netdecomp_graph::{bfs, Graph, GraphBuilder};
use netdecomp_sim::{CongestLimit, Ctx, Incoming, Outgoing, Protocol, Simulator};

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2usize..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(2 * n)).prop_map(move |pairs| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in pairs {
                if u != v {
                    b.add_edge(u, v).expect("in range");
                }
            }
            b.build()
        })
    })
}

struct Flood {
    root: usize,
    dist: Option<usize>,
    clock: usize,
}

impl Protocol for Flood {
    fn start(&mut self, ctx: &Ctx<'_>) -> Vec<Outgoing> {
        if ctx.id == self.root {
            self.dist = Some(0);
            vec![Outgoing::broadcast(Bytes::from_static(b"x"))]
        } else {
            Vec::new()
        }
    }

    fn round(&mut self, _ctx: &Ctx<'_>, incoming: &[Incoming]) -> Vec<Outgoing> {
        self.clock += 1;
        if self.dist.is_none() && !incoming.is_empty() {
            self.dist = Some(self.clock);
            return vec![Outgoing::broadcast(Bytes::from_static(b"x"))];
        }
        Vec::new()
    }

    fn is_halted(&self) -> bool {
        true
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn flooding_equals_bfs_on_arbitrary_graphs(g in arb_graph(30), root_pick in 0usize..30) {
        let n = g.vertex_count();
        let root = root_pick % n;
        let mut sim = Simulator::new(&g, |_, _| Flood { root, dist: None, clock: 0 });
        // n+1 rounds always suffice for a flood plus drain.
        sim.run_rounds(n + 1).expect("no limits");
        let expected = bfs::distances(&g, root);
        for (v, want) in expected.iter().enumerate() {
            prop_assert_eq!(sim.nodes()[v].dist, *want, "vertex {}", v);
        }
    }

    #[test]
    fn run_stats_totals_match_per_round_sums(g in arb_graph(24)) {
        let mut sim = Simulator::new(&g, |_, _| Flood { root: 0, dist: None, clock: 0 });
        let run = sim.run_rounds(g.vertex_count() + 1).expect("no limits");
        let msg_sum: usize = run.per_round.iter().map(|r| r.messages).sum();
        let byte_sum: usize = run.per_round.iter().map(|r| r.bytes).sum();
        prop_assert_eq!(run.total_messages, msg_sum);
        prop_assert_eq!(run.total_bytes, byte_sum);
        let max_edge = run.per_round.iter().map(|r| r.max_edge_bytes).max().unwrap_or(0);
        prop_assert_eq!(run.max_edge_bytes, max_edge);
        // Each flood message is one byte; every vertex broadcasts at most
        // once, so total messages <= 2m.
        prop_assert!(run.total_messages <= 2 * g.edge_count());
    }

    #[test]
    fn one_byte_messages_never_violate_one_byte_budget(g in arb_graph(20)) {
        let mut sim = Simulator::new(&g, |_, _| Flood { root: 0, dist: None, clock: 0 })
            .with_limit(CongestLimit::PerEdgeBytes(1));
        // The flood sends at most one 1-byte message per edge per round.
        prop_assert!(sim.run_rounds(g.vertex_count() + 1).is_ok());
    }
}

//! Minimal vendored stand-in for the `rayon` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the data-parallel surface `netdecomp-sim` uses: `par_iter_mut` over
//! slices with `zip` / `enumerate` / `for_each`, [`current_num_threads`],
//! [`ThreadPoolBuilder`] + [`ThreadPool::install`] for scoped thread
//! counts, and [`ThreadPool::broadcast`] for running one closure instance
//! per pool thread.
//!
//! Execution model: fork–join over `std::thread::scope`, splitting the
//! iterator into one contiguous chunk per thread. There is no work
//! stealing and no persistent pool — `for_each` spawns threads per call —
//! so this shim suits coarse round-granularity parallelism, not
//! fine-grained task graphs. With one available thread it degrades to a
//! plain sequential loop with zero spawn overhead.
//!
//! [`ThreadPool::broadcast`] is the one-spawn-per-step primitive: a caller
//! that needs several barrier-separated parallel phases over the same data
//! runs them all inside a single `broadcast` (one scoped thread set),
//! instead of paying one thread spawn per phase via repeated `for_each`
//! calls. Its surface matches real rayon's `ThreadPool::broadcast`, so a
//! future swap to the real crate is drop-in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;

thread_local! {
    /// Scoped override installed by [`ThreadPool::install`]; 0 = none.
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// The number of threads parallel iterators will use on this thread.
///
/// Resolution order: an installed [`ThreadPool`] override, then the
/// `RAYON_NUM_THREADS` environment variable, then the machine's available
/// parallelism.
#[must_use]
pub fn current_num_threads() -> usize {
    let over = THREAD_OVERRIDE.with(Cell::get);
    if over > 0 {
        return over;
    }
    if let Ok(s) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Builder for a [`ThreadPool`] with an explicit thread count.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default settings.
    #[must_use]
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the thread count (0 = automatic).
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Never fails in the shim; the `Result` mirrors the real API.
    pub fn build(self) -> Result<ThreadPool, std::convert::Infallible> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A handle scoping parallel execution to a fixed thread count.
///
/// The shim has no persistent workers; [`ThreadPool::install`] only pins
/// the thread count seen by [`current_num_threads`] while `op` runs.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count installed.
    pub fn install<R, F: FnOnce() -> R>(&self, op: F) -> R {
        let prev = THREAD_OVERRIDE.with(|c| c.replace(self.num_threads));
        struct Reset(usize);
        impl Drop for Reset {
            fn drop(&mut self) {
                THREAD_OVERRIDE.with(|c| c.set(self.0));
            }
        }
        let _reset = Reset(prev);
        op()
    }

    /// The thread count `broadcast` (and an installed `for_each`) resolves
    /// to: the explicit `num_threads`, or the ambient default for `0`.
    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            current_num_threads()
        }
    }

    /// Executes `op` once on every thread of the pool, concurrently, and
    /// returns the per-thread results in index order (mirrors real rayon's
    /// `ThreadPool::broadcast`).
    ///
    /// All instances run at the same time on distinct threads, so `op` may
    /// coordinate through a [`std::sync::Barrier`] sized to
    /// [`ThreadPool::current_num_threads`]. This makes one `broadcast` the
    /// cheapest way to run several barrier-separated parallel phases with a
    /// single thread-spawn set; with the real rayon crate the same call
    /// reuses the pool's persistent workers and spawns nothing at all.
    pub fn broadcast<OP, R>(&self, op: OP) -> Vec<R>
    where
        OP: Fn(BroadcastContext<'_>) -> R + Sync,
        R: Send,
    {
        let threads = self.current_num_threads();
        let run = |index: usize| {
            // Pin the ambient thread count so nested `for_each` calls see
            // the pool size, as they would on a real rayon worker.
            self.install(|| {
                op(BroadcastContext {
                    index,
                    num_threads: threads,
                    _scope: std::marker::PhantomData,
                })
            })
        };
        if threads <= 1 {
            return vec![run(0)];
        }
        let mut results: Vec<Option<R>> = Vec::new();
        results.resize_with(threads, || None);
        let (last, rest) = results
            .split_last_mut()
            .expect("threads >= 2 slots allocated");
        std::thread::scope(|scope| {
            for (index, slot) in rest.iter_mut().enumerate() {
                let run = &run;
                scope.spawn(move || *slot = Some(run(index)));
            }
            // The final instance runs on the calling thread.
            *last = Some(run(threads - 1));
        });
        results
            .into_iter()
            .map(|r| r.expect("every broadcast instance ran"))
            .collect()
    }
}

/// Per-instance information handed to [`ThreadPool::broadcast`] closures.
#[derive(Debug)]
pub struct BroadcastContext<'a> {
    index: usize,
    num_threads: usize,
    _scope: std::marker::PhantomData<&'a ()>,
}

impl BroadcastContext<'_> {
    /// The index of this instance in `0..num_threads`.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// The number of concurrently running instances.
    #[must_use]
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }
}

/// A splittable, exactly-sized parallel iterator.
///
/// The `pi_*` methods are the splitting machinery (an implementation
/// detail); user code only touches [`for_each`](ParallelIterator::for_each)
/// and the combinators.
pub trait ParallelIterator: Sized + Send {
    /// Element type.
    type Item: Send;
    /// Sequential iterator draining one chunk.
    type Seq: Iterator<Item = Self::Item>;

    #[doc(hidden)]
    fn pi_len(&self) -> usize;

    #[doc(hidden)]
    fn pi_split_at(self, mid: usize) -> (Self, Self);

    #[doc(hidden)]
    fn pi_seq(self) -> Self::Seq;

    /// Applies `f` to every element, splitting the work across
    /// [`current_num_threads`] threads.
    fn for_each<F: Fn(Self::Item) + Sync>(self, f: F) {
        let threads = current_num_threads();
        let len = self.pi_len();
        if threads <= 1 || len <= 1 {
            self.pi_seq().for_each(f);
            return;
        }
        let chunk = len.div_ceil(threads.min(len));
        let mut pieces = Vec::with_capacity(threads);
        let mut rest = self;
        let mut remaining = len;
        while remaining > chunk {
            let (front, back) = rest.pi_split_at(chunk);
            pieces.push(front);
            rest = back;
            remaining -= chunk;
        }
        let f = &f;
        std::thread::scope(|scope| {
            for piece in pieces {
                scope.spawn(move || piece.pi_seq().for_each(f));
            }
            // The final chunk runs on the calling thread.
            rest.pi_seq().for_each(f);
        });
    }

    /// Pairs elements with those of `other` positionally.
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Pairs elements with their index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            inner: self,
            offset: 0,
        }
    }

    /// Accepted for API compatibility; the shim always splits into
    /// per-thread contiguous chunks, so a minimum split length is moot.
    fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

/// Exclusive parallel iterator over a slice.
#[derive(Debug)]
pub struct IterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParallelIterator for IterMut<'a, T> {
    type Item = &'a mut T;
    type Seq = std::slice::IterMut<'a, T>;

    fn pi_len(&self) -> usize {
        self.slice.len()
    }

    fn pi_split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at_mut(mid);
        (IterMut { slice: a }, IterMut { slice: b })
    }

    fn pi_seq(self) -> Self::Seq {
        self.slice.iter_mut()
    }
}

/// Shared parallel iterator over a slice.
#[derive(Debug)]
pub struct Iter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for Iter<'a, T> {
    type Item = &'a T;
    type Seq = std::slice::Iter<'a, T>;

    fn pi_len(&self) -> usize {
        self.slice.len()
    }

    fn pi_split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at(mid);
        (Iter { slice: a }, Iter { slice: b })
    }

    fn pi_seq(self) -> Self::Seq {
        self.slice.iter()
    }
}

/// See [`ParallelIterator::zip`].
#[derive(Debug)]
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    type Seq = std::iter::Zip<A::Seq, B::Seq>;

    fn pi_len(&self) -> usize {
        self.a.pi_len().min(self.b.pi_len())
    }

    fn pi_split_at(self, mid: usize) -> (Self, Self) {
        let (a1, a2) = self.a.pi_split_at(mid);
        let (b1, b2) = self.b.pi_split_at(mid);
        (Zip { a: a1, b: b1 }, Zip { a: a2, b: b2 })
    }

    fn pi_seq(self) -> Self::Seq {
        self.a.pi_seq().zip(self.b.pi_seq())
    }
}

/// See [`ParallelIterator::enumerate`].
#[derive(Debug)]
pub struct Enumerate<A> {
    inner: A,
    offset: usize,
}

/// Sequential side of [`Enumerate`].
#[derive(Debug)]
pub struct EnumerateSeq<S> {
    inner: S,
    next: usize,
}

impl<S: Iterator> Iterator for EnumerateSeq<S> {
    type Item = (usize, S::Item);

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next()?;
        let idx = self.next;
        self.next += 1;
        Some((idx, item))
    }
}

impl<A: ParallelIterator> ParallelIterator for Enumerate<A> {
    type Item = (usize, A::Item);
    type Seq = EnumerateSeq<A::Seq>;

    fn pi_len(&self) -> usize {
        self.inner.pi_len()
    }

    fn pi_split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.inner.pi_split_at(mid);
        (
            Enumerate {
                inner: a,
                offset: self.offset,
            },
            Enumerate {
                inner: b,
                offset: self.offset + mid,
            },
        )
    }

    fn pi_seq(self) -> Self::Seq {
        EnumerateSeq {
            inner: self.inner.pi_seq(),
            next: self.offset,
        }
    }
}

/// `par_iter_mut` over slices (and anything derefing to one).
pub trait ParallelSliceMut<T: Send> {
    /// An exclusive parallel iterator over the elements.
    fn par_iter_mut(&mut self) -> IterMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> IterMut<'_, T> {
        IterMut { slice: self }
    }
}

/// `par_iter` over slices (and anything derefing to one).
pub trait ParallelSlice<T: Sync> {
    /// A shared parallel iterator over the elements.
    fn par_iter(&self) -> Iter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> Iter<'_, T> {
        Iter { slice: self }
    }
}

/// The glob-importable surface, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{ParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_each_visits_every_element() {
        let mut v: Vec<usize> = (0..1000).collect();
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i + 1));
    }

    #[test]
    fn zip_enumerate_compose() {
        let mut a: Vec<usize> = vec![0; 257];
        let mut b: Vec<usize> = vec![0; 257];
        a.par_iter_mut()
            .zip(b.par_iter_mut())
            .enumerate()
            .for_each(|(i, (x, y))| {
                *x = i;
                *y = 2 * i;
            });
        assert!(a.iter().enumerate().all(|(i, &x)| x == i));
        assert!(b.iter().enumerate().all(|(i, &y)| y == 2 * i));
    }

    #[test]
    fn pool_install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_ne!(THREAD_OVERRIDE.with(std::cell::Cell::get), 3);
    }

    #[test]
    fn parallel_sum_matches_sequential() {
        let v: Vec<u64> = (0..10_000).collect();
        let total = AtomicUsize::new(0);
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            v.par_iter().for_each(|&x| {
                total.fetch_add(x as usize, Ordering::Relaxed);
            });
        });
        assert_eq!(
            total.load(Ordering::Relaxed),
            (0..10_000).sum::<u64>() as usize
        );
    }

    #[test]
    fn broadcast_runs_once_per_thread_in_index_order() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let indices = pool.broadcast(|ctx| {
            assert_eq!(ctx.num_threads(), 4);
            assert_eq!(current_num_threads(), 4);
            ctx.index()
        });
        assert_eq!(indices, vec![0, 1, 2, 3]);
    }

    #[test]
    fn broadcast_instances_run_concurrently_and_support_barriers() {
        // The engine runs barrier-separated phases inside one broadcast;
        // this deadlocks unless all instances are live simultaneously.
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let barrier = std::sync::Barrier::new(3);
        let phase_one = AtomicUsize::new(0);
        let results = pool.broadcast(|_| {
            phase_one.fetch_add(1, Ordering::SeqCst);
            barrier.wait();
            // Every instance observes all phase-one effects after the wait.
            phase_one.load(Ordering::SeqCst)
        });
        assert_eq!(results, vec![3, 3, 3]);
    }

    #[test]
    fn broadcast_with_one_thread_runs_on_caller() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let caller = std::thread::current().id();
        let ids = pool.broadcast(|ctx| {
            assert_eq!(ctx.num_threads(), 1);
            std::thread::current().id()
        });
        assert_eq!(ids, vec![caller]);
    }

    #[test]
    fn empty_and_single_are_fine() {
        let mut v: Vec<u8> = Vec::new();
        v.par_iter_mut().for_each(|_| unreachable!());
        let mut one = [5u8];
        one.par_iter_mut().for_each(|x| *x = 9);
        assert_eq!(one[0], 9);
    }
}

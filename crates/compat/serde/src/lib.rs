//! Minimal vendored stand-in for the `serde` crate (serialize side only).
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the part of serde's data model it uses: the [`Serialize`] trait, the
//! [`ser`] module with the `Serializer` trait family that
//! `netdecomp-bench`'s JSON backend implements, and `#[derive(Serialize)]`
//! / `#[derive(Deserialize)]` re-exported from the companion
//! `serde_derive` proc-macro crate.
//!
//! [`Deserialize`] is a marker here: the workspace's reports are
//! write-only artifacts, so deriving it records intent without pulling in a
//! deserialization framework.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

pub use ser::{Serialize, Serializer};

/// Marker for types that declare a deserializable wire shape.
///
/// No deserializer exists in this workspace; see the crate docs.
pub trait Deserialize {}

/// The serialization half of the serde data model.
pub mod ser {
    use std::fmt::Display;

    /// Errors produced by a [`Serializer`].
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from any message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// A value that can drive a [`Serializer`] over its structure.
    pub trait Serialize {
        /// Feeds `self` into `serializer`.
        ///
        /// # Errors
        ///
        /// Whatever the serializer surfaces.
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
    }

    /// A data-format backend receiving the serde data model.
    pub trait Serializer: Sized {
        /// Output of a successful serialization.
        type Ok;
        /// Error type.
        type Error: Error;
        /// Sequence sub-serializer.
        type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
        /// Tuple sub-serializer.
        type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
        /// Tuple-struct sub-serializer.
        type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
        /// Tuple-variant sub-serializer.
        type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
        /// Map sub-serializer.
        type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
        /// Struct sub-serializer.
        type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
        /// Struct-variant sub-serializer.
        type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

        /// Serializes a `bool`.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
        /// Serializes an `i8`.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
        /// Serializes an `i16`.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
        /// Serializes an `i32`.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
        /// Serializes an `i64`.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
        /// Serializes a `u8`.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
        /// Serializes a `u16`.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
        /// Serializes a `u32`.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
        /// Serializes a `u64`.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
        /// Serializes an `f32`.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
        /// Serializes an `f64`.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
        /// Serializes a `char`.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
        /// Serializes a string slice.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
        /// Serializes a byte slice.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
        /// Serializes `Option::None`.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
        /// Serializes `Option::Some(value)`.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
        /// Serializes `()`.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
        /// Serializes a unit struct.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
        /// Serializes a unit enum variant.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_unit_variant(
            self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
        ) -> Result<Self::Ok, Self::Error>;
        /// Serializes a newtype struct.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_newtype_struct<T: Serialize + ?Sized>(
            self,
            name: &'static str,
            value: &T,
        ) -> Result<Self::Ok, Self::Error>;
        /// Serializes a newtype enum variant.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_newtype_variant<T: Serialize + ?Sized>(
            self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
            value: &T,
        ) -> Result<Self::Ok, Self::Error>;
        /// Begins a sequence.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
        /// Begins a tuple.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
        /// Begins a tuple struct.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_tuple_struct(
            self,
            name: &'static str,
            len: usize,
        ) -> Result<Self::SerializeTupleStruct, Self::Error>;
        /// Begins a tuple enum variant.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_tuple_variant(
            self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
            len: usize,
        ) -> Result<Self::SerializeTupleVariant, Self::Error>;
        /// Begins a map.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
        /// Begins a struct.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_struct(
            self,
            name: &'static str,
            len: usize,
        ) -> Result<Self::SerializeStruct, Self::Error>;
        /// Begins a struct enum variant.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_struct_variant(
            self,
            name: &'static str,
            variant_index: u32,
            variant: &'static str,
            len: usize,
        ) -> Result<Self::SerializeStructVariant, Self::Error>;
    }

    /// Streams sequence elements.
    pub trait SerializeSeq {
        /// Output type.
        type Ok;
        /// Error type.
        type Error: Error;

        /// Adds one element.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_element<T: Serialize + ?Sized>(
            &mut self,
            value: &T,
        ) -> Result<(), Self::Error>;

        /// Closes the sequence.
        ///
        /// # Errors
        /// Backend-defined.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Streams tuple elements.
    pub trait SerializeTuple {
        /// Output type.
        type Ok;
        /// Error type.
        type Error: Error;

        /// Adds one element.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_element<T: Serialize + ?Sized>(
            &mut self,
            value: &T,
        ) -> Result<(), Self::Error>;

        /// Closes the tuple.
        ///
        /// # Errors
        /// Backend-defined.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Streams tuple-struct fields.
    pub trait SerializeTupleStruct {
        /// Output type.
        type Ok;
        /// Error type.
        type Error: Error;

        /// Adds one field.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;

        /// Closes the tuple struct.
        ///
        /// # Errors
        /// Backend-defined.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Streams tuple-variant fields.
    pub trait SerializeTupleVariant {
        /// Output type.
        type Ok;
        /// Error type.
        type Error: Error;

        /// Adds one field.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;

        /// Closes the variant.
        ///
        /// # Errors
        /// Backend-defined.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Streams map entries.
    pub trait SerializeMap {
        /// Output type.
        type Ok;
        /// Error type.
        type Error: Error;

        /// Adds a key.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error>;

        /// Adds the value for the preceding key.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;

        /// Closes the map.
        ///
        /// # Errors
        /// Backend-defined.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Streams struct fields.
    pub trait SerializeStruct {
        /// Output type.
        type Ok;
        /// Error type.
        type Error: Error;

        /// Adds one named field.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Self::Error>;

        /// Closes the struct.
        ///
        /// # Errors
        /// Backend-defined.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Streams struct-variant fields.
    pub trait SerializeStructVariant {
        /// Output type.
        type Ok;
        /// Error type.
        type Error: Error;

        /// Adds one named field.
        ///
        /// # Errors
        /// Backend-defined.
        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Self::Error>;

        /// Closes the variant.
        ///
        /// # Errors
        /// Backend-defined.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    mod impls {
        use super::{Serialize, SerializeMap, SerializeSeq, SerializeTuple, Serializer};

        macro_rules! primitive {
            ($($ty:ty => $method:ident),* $(,)?) => {$(
                impl Serialize for $ty {
                    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                        s.$method(*self)
                    }
                }
            )*};
        }

        primitive!(
            bool => serialize_bool,
            i8 => serialize_i8, i16 => serialize_i16, i32 => serialize_i32,
            i64 => serialize_i64,
            u8 => serialize_u8, u16 => serialize_u16, u32 => serialize_u32,
            u64 => serialize_u64,
            f32 => serialize_f32, f64 => serialize_f64,
            char => serialize_char,
        );

        impl Serialize for usize {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_u64(*self as u64)
            }
        }

        impl Serialize for isize {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_i64(*self as i64)
            }
        }

        impl Serialize for str {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_str(self)
            }
        }

        impl Serialize for String {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_str(self)
            }
        }

        impl Serialize for () {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_unit()
            }
        }

        impl<T: Serialize + ?Sized> Serialize for &T {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                (**self).serialize(s)
            }
        }

        impl<T: Serialize> Serialize for Option<T> {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                match self {
                    Some(v) => s.serialize_some(v),
                    None => s.serialize_none(),
                }
            }
        }

        impl<T: Serialize> Serialize for [T] {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let mut seq = s.serialize_seq(Some(self.len()))?;
                for item in self {
                    seq.serialize_element(item)?;
                }
                seq.end()
            }
        }

        impl<T: Serialize> Serialize for Vec<T> {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                self.as_slice().serialize(s)
            }
        }

        impl<T: Serialize, const N: usize> Serialize for [T; N] {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                self.as_slice().serialize(s)
            }
        }

        macro_rules! tuple {
            ($($len:literal => ($($name:ident . $idx:tt),+))*) => {$(
                impl<$($name: Serialize),+> Serialize for ($($name,)+) {
                    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                        let mut t = s.serialize_tuple($len)?;
                        $(t.serialize_element(&self.$idx)?;)+
                        t.end()
                    }
                }
            )*};
        }

        tuple! {
            1 => (A.0)
            2 => (A.0, B.1)
            3 => (A.0, B.1, C.2)
            4 => (A.0, B.1, C.2, D.3)
        }

        impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let mut map = s.serialize_map(Some(self.len()))?;
                for (k, v) in self {
                    map.serialize_key(k)?;
                    map.serialize_value(v)?;
                }
                map.end()
            }
        }

        impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let mut map = s.serialize_map(Some(self.len()))?;
                for (k, v) in self {
                    map.serialize_key(k)?;
                    map.serialize_value(v)?;
                }
                map.end()
            }
        }
    }
}

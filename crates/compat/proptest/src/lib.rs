//! Minimal vendored stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the property-testing surface it uses: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map`, range and tuple strategies,
//! [`collection::vec`] / [`collection::hash_set`], the [`proptest!`] macro
//! (with optional `#![proptest_config(..)]` header), and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate: cases are generated from a fixed
//! deterministic seed (reproducible by construction) and failing inputs are
//! **not shrunk** — the failing case's assertion message is the diagnostic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving strategies (SplitMix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test case.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "TestRng::below(0)");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and draws from
    /// the produced strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let mid = self.inner.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategies {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                start + rng.below((end - start) as u64 + 1) as $ty
            }
        }
    )*};
}

int_strategies!(usize, u64, u32, u16, u8);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec`s with a size drawn from `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet`s; duplicates shrink the set below the drawn
    /// size, matching the real crate's "up to" semantics closely enough.
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy { element, size }
    }

    /// See [`hash_set`].
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Runs a property body over `config.cases` generated cases.
///
/// Used by the [`proptest!`] macro; not part of the public API surface of
/// the real crate, but harmless to expose.
pub fn run_cases<F: FnMut(&mut TestRng)>(config: &ProptestConfig, name: &str, mut body: F) {
    // Stable per-test stream: hash the test name so adding a test does not
    // reshuffle every other test's cases.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x100_0000_01b3);
    }
    for case in 0..config.cases {
        let mut rng = TestRng::new(seed ^ (u64::from(case) << 32));
        body(&mut rng);
    }
}

/// Defines property tests: an optional `#![proptest_config(..)]` header
/// followed by `#[test] fn name(pat in strategy, ..) { body }` items
/// (doc comments and extra attributes on the items are preserved).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)
     $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(&config, stringify!($name), |rng| {
                    $(let $pat = $crate::Strategy::generate(&$strat, rng);)+
                    $body
                });
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// The glob-importable surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = super::TestRng::new(1);
        for _ in 0..100 {
            let v = Strategy::generate(&(3usize..10), &mut rng);
            assert!((3..10).contains(&v));
            let (a, b) = Strategy::generate(&(0usize..5, 1usize..=2), &mut rng);
            assert!(a < 5 && (1..=2).contains(&b));
        }
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let strat = (2usize..6).prop_flat_map(|n| (0..n).prop_map(move |i| (n, i)));
        let mut rng = super::TestRng::new(9);
        for _ in 0..100 {
            let (n, i) = Strategy::generate(&strat, &mut rng);
            assert!(i < n);
        }
    }

    #[test]
    fn collections_respect_size() {
        let mut rng = super::TestRng::new(4);
        let v = Strategy::generate(&collection::vec(0usize..10, 2..5), &mut rng);
        assert!((2..5).contains(&v.len()));
        let s = Strategy::generate(&collection::hash_set(0usize..100, 0..20), &mut rng);
        assert!(s.len() < 20);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_with_config_runs(x in 0usize..10, y in 0usize..10) {
            prop_assert!(x < 10 && y < 10);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config_runs(x in 1usize..=3) {
            prop_assert_ne!(x, 0);
            prop_assert_eq!(x.min(3), x);
        }
    }
}

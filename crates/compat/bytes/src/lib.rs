//! Minimal vendored stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the narrow slice of the `bytes` API it actually uses: cheaply
//! clonable immutable [`Bytes`] payloads (including zero-copy
//! [`Bytes::slice`] views), a growable [`BytesMut`] builder whose buffer
//! round-trips through [`BytesMut::freeze`] / [`Bytes::try_into_mut`]
//! without copying, and the little-endian [`Buf`]/[`BufMut`] accessors the
//! wire codec needs.
//!
//! Semantics match the real crate for this surface: `Bytes::clone` and
//! `Bytes::slice` are reference-count bumps (no byte copying), which is
//! what makes broadcast delivery and frame-payload slicing in
//! `netdecomp-sim` zero-copy, and `freeze` / `try_into_mut` move the
//! backing buffer instead of reallocating it, which is what lets the
//! frame transport recycle its encode buffers across rounds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::RangeBounds;
use std::sync::Arc;

/// Backing storage of a [`Bytes`]: either a borrowed static slice (no
/// allocation, as in the real crate's `from_static`) or a shared buffer.
#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

impl Repr {
    fn as_full_slice(&self) -> &[u8] {
        match self {
            Repr::Static(s) => s,
            Repr::Shared(v) => v,
        }
    }
}

/// A cheaply clonable, immutable, contiguous byte payload.
///
/// Internally a shared buffer plus a `[pos, end)` view: cloning and
/// [`Bytes::slice`] share the allocation, and [`Buf`] reads advance the
/// view's start without copying.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    /// Start of the view (also the [`Buf`] read cursor).
    pos: usize,
    /// One past the end of the view.
    end: usize,
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Bytes {
    /// An empty payload (no allocation).
    #[must_use]
    pub fn new() -> Self {
        Bytes::from_static(&[])
    }

    /// Wraps a static byte slice without allocating.
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            pos: 0,
            end: bytes.len(),
            repr: Repr::Static(bytes),
        }
    }

    /// Bytes remaining from the view's start to its end.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.pos
    }

    /// `true` when no bytes remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The remaining bytes as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.repr.as_full_slice()[self.pos..self.end]
    }

    /// A zero-copy sub-view of the remaining bytes: shares the backing
    /// buffer, no bytes are moved.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds of [`Bytes::len`] or
    /// decreasing.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let start = match range.start_bound() {
            std::ops::Bound::Included(&s) => s,
            std::ops::Bound::Excluded(&s) => s + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&e) => e + 1,
            std::ops::Bound::Excluded(&e) => e,
            std::ops::Bound::Unbounded => len,
        };
        assert!(
            start <= end && end <= len,
            "Bytes::slice: range {start}..{end} out of bounds (len {len})"
        );
        Bytes {
            repr: self.repr.clone(),
            pos: self.pos + start,
            end: self.pos + end,
        }
    }

    /// Attempts to reclaim the backing buffer for mutation without
    /// copying, as in the real crate: succeeds when this handle is the
    /// only reference to a whole (unsliced, unread) shared buffer. On
    /// failure the payload is handed back unchanged so callers can fall
    /// back to a fresh buffer.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` when the buffer is shared, borrowed from a
    /// static slice, or viewed through a proper sub-slice.
    pub fn try_into_mut(self) -> Result<BytesMut, Bytes> {
        match self.repr {
            Repr::Shared(mut arc) if self.pos == 0 && self.end == arc.len() => {
                if Arc::get_mut(&mut arc).is_some() {
                    Ok(BytesMut { data: arc })
                } else {
                    Err(Bytes {
                        pos: self.pos,
                        end: self.end,
                        repr: Repr::Shared(arc),
                    })
                }
            }
            repr => Err(Bytes {
                pos: self.pos,
                end: self.end,
                repr,
            }),
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            pos: 0,
            end: v.len(),
            repr: Repr::Shared(Arc::new(v)),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that freezes into [`Bytes`] without copying.
///
/// Invariant: the backing `Arc` is uniquely owned for the whole lifetime
/// of the `BytesMut` (constructors allocate fresh; [`Bytes::try_into_mut`]
/// verifies uniqueness before handing a buffer back), so mutation never
/// needs a copy-on-write path.
#[derive(Debug)]
pub struct BytesMut {
    data: Arc<Vec<u8>>,
}

impl Default for BytesMut {
    fn default() -> Self {
        BytesMut::new()
    }
}

impl Clone for BytesMut {
    /// Deep copy: clones the bytes, not the (uniquely owned) handle.
    fn clone(&self) -> Self {
        BytesMut {
            data: Arc::new(self.data.as_ref().clone()),
        }
    }
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        self.data.as_slice() == other.data.as_slice()
    }
}

impl Eq for BytesMut {}

impl BytesMut {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut {
            data: Arc::new(Vec::new()),
        }
    }

    /// An empty buffer with `cap` bytes preallocated.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Arc::new(Vec::with_capacity(cap)),
        }
    }

    /// The backing vector (uniquely owned by invariant).
    fn vec_mut(&mut self) -> &mut Vec<u8> {
        Arc::get_mut(&mut self.data).expect("BytesMut buffer is uniquely owned")
    }

    /// Current length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes the buffer can hold before reallocating.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Drops the contents, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.vec_mut().clear();
    }

    /// Resizes to `new_len` bytes, filling any growth with `value` (as in
    /// the real crate). Shrinking keeps the allocation.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.vec_mut().resize(new_len, value);
    }

    /// Reserves capacity for at least `additional` more bytes (as in the
    /// real crate; a no-op when capacity already suffices).
    pub fn reserve(&mut self, additional: usize) {
        self.vec_mut().reserve(additional);
    }

    /// Converts into an immutable [`Bytes`] without copying: the backing
    /// buffer is moved, not reallocated.
    #[must_use]
    pub fn freeze(self) -> Bytes {
        let end = self.data.len();
        Bytes {
            pos: 0,
            end,
            repr: Repr::Shared(self.data),
        }
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        self.vec_mut()
    }
}

/// Read access to a byte cursor (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads `n` bytes into `dst` and advances. Panics if underfull.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// `true` while bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64` bit pattern.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "Bytes: read past end");
        dst.copy_from_slice(&self.repr.as_full_slice()[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

/// Write access to a growable byte buffer (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64` bit pattern.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec_mut().extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared_arc(b: &Bytes) -> &Arc<Vec<u8>> {
        match &b.repr {
            Repr::Shared(arc) => arc,
            Repr::Static(_) => panic!("expected shared repr"),
        }
    }

    #[test]
    fn clone_is_shallow_and_equal() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.as_slice(), &[1, 2, 3]);
        assert!(Arc::ptr_eq(shared_arc(&a), shared_arc(&b)));
    }

    #[test]
    fn reads_advance_cursor_per_clone() {
        let mut a = Bytes::from(vec![7, 0, 1, 2]);
        let b = a.clone();
        assert_eq!(a.get_u8(), 7);
        assert_eq!(a.remaining(), 3);
        assert_eq!(b.remaining(), 4); // clone keeps its own cursor
    }

    #[test]
    fn round_trip_le() {
        let mut m = BytesMut::new();
        m.put_u16_le(515);
        m.put_u32_le(70_000);
        m.put_u64_le(u64::MAX - 1);
        m.put_f64_le(-2.5);
        let mut b = m.freeze();
        assert_eq!(b.len(), 22);
        assert_eq!(b.get_u16_le(), 515);
        assert_eq!(b.get_u32_le(), 70_000);
        assert_eq!(b.get_u64_le(), u64::MAX - 1);
        assert_eq!(b.get_f64_le(), -2.5);
        assert!(!b.has_remaining());
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn overread_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.get_u32_le();
    }

    #[test]
    fn static_and_empty() {
        let s = Bytes::from_static(b"xy");
        assert_eq!(s.len(), 2);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn slice_shares_the_backing_buffer() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mid = b.slice(2..5);
        assert_eq!(mid.as_slice(), &[2, 3, 4]);
        assert!(Arc::ptr_eq(shared_arc(&b), shared_arc(&mid)));
        // Sub-slicing a slice stays relative to the view.
        let tail = mid.slice(1..);
        assert_eq!(tail.as_slice(), &[3, 4]);
        assert_eq!(b.slice(..0).len(), 0);
        assert_eq!(Bytes::from_static(b"abc").slice(1..=1).as_slice(), b"b");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_past_end_panics() {
        let _ = Bytes::from(vec![1, 2]).slice(1..4);
    }

    #[test]
    fn freeze_and_reclaim_reuse_the_allocation() {
        let mut m = BytesMut::with_capacity(64);
        m.put_slice(b"hello");
        let cap = m.capacity();
        let frozen = m.freeze();
        assert_eq!(frozen.as_slice(), b"hello");
        let mut back = frozen.try_into_mut().expect("unique buffer reclaims");
        assert_eq!(back.capacity(), cap, "capacity survives the round trip");
        back.clear();
        back.put_slice(b"again");
        assert_eq!(back.freeze().as_slice(), b"again");
    }

    #[test]
    fn shared_or_sliced_buffers_refuse_to_reclaim() {
        let frozen = Bytes::from(vec![1, 2, 3]);
        let held = frozen.clone();
        let frozen = frozen.try_into_mut().expect_err("shared buffer");
        drop(held);
        // Unique again, but a proper sub-view still refuses.
        let sub = frozen.slice(1..);
        assert!(sub.try_into_mut().is_err());
        // Static payloads never reclaim.
        assert!(Bytes::from_static(b"s").try_into_mut().is_err());
    }

    #[test]
    fn bytes_mut_writes_through_deref_mut() {
        let mut m = BytesMut::new();
        m.put_u32_le(0);
        m[0..4].copy_from_slice(&7u32.to_le_bytes());
        let mut b = m.freeze();
        assert_eq!(b.get_u32_le(), 7);
    }

    #[test]
    fn bytes_mut_resize_and_reserve_match_the_real_crate() {
        let mut m = BytesMut::new();
        m.reserve(64);
        let cap = m.capacity();
        assert!(cap >= 64);
        m.put_u8(7);
        m.resize(4, 0xee);
        assert_eq!(&m[..], &[7, 0xee, 0xee, 0xee]);
        m.resize(1, 0);
        assert_eq!(&m[..], &[7]);
        assert_eq!(m.capacity(), cap, "shrinking keeps the allocation");
    }

    #[test]
    fn bytes_mut_clone_is_deep() {
        let mut a = BytesMut::new();
        a.put_u8(1);
        let mut b = a.clone();
        b.put_u8(2);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 2);
    }
}

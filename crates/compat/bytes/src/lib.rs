//! Minimal vendored stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the narrow slice of the `bytes` API it actually uses: cheaply
//! clonable immutable [`Bytes`] payloads, a growable [`BytesMut`] builder,
//! and the little-endian [`Buf`]/[`BufMut`] accessors the wire codec needs.
//!
//! Semantics match the real crate for this surface: `Bytes::clone` is a
//! reference-count bump (no byte copying), which is what makes broadcast
//! delivery in `netdecomp-sim` zero-copy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A cheaply clonable, immutable, contiguous byte payload.
///
/// Internally an `Arc<[u8]>` plus a cursor: cloning shares the allocation,
/// and [`Buf`] reads advance the cursor without copying.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    /// Read cursor for the [`Buf`] implementation.
    pos: usize,
}

impl Bytes {
    /// An empty payload (no allocation).
    #[must_use]
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice.
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
            pos: 0,
        }
    }

    /// Bytes remaining from the cursor to the end.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// `true` when no bytes remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The remaining bytes as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v),
            pos: 0,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes {
            data: Arc::from(v),
            pos: 0,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes preallocated.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`] without copying.
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// Read access to a byte cursor (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads `n` bytes into `dst` and advances. Panics if underfull.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// `true` while bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64` bit pattern.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "Bytes: read past end");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

/// Write access to a growable byte buffer (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64` bit pattern.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_is_shallow_and_equal() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.as_slice(), &[1, 2, 3]);
        assert!(Arc::ptr_eq(&a.data, &b.data));
    }

    #[test]
    fn reads_advance_cursor_per_clone() {
        let mut a = Bytes::from(vec![7, 0, 1, 2]);
        let b = a.clone();
        assert_eq!(a.get_u8(), 7);
        assert_eq!(a.remaining(), 3);
        assert_eq!(b.remaining(), 4); // clone keeps its own cursor
    }

    #[test]
    fn round_trip_le() {
        let mut m = BytesMut::new();
        m.put_u16_le(515);
        m.put_u32_le(70_000);
        m.put_u64_le(u64::MAX - 1);
        m.put_f64_le(-2.5);
        let mut b = m.freeze();
        assert_eq!(b.len(), 22);
        assert_eq!(b.get_u16_le(), 515);
        assert_eq!(b.get_u32_le(), 70_000);
        assert_eq!(b.get_u64_le(), u64::MAX - 1);
        assert_eq!(b.get_f64_le(), -2.5);
        assert!(!b.has_remaining());
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn overread_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.get_u32_le();
    }

    #[test]
    fn static_and_empty() {
        let s = Bytes::from_static(b"xy");
        assert_eq!(s.len(), 2);
        assert!(Bytes::new().is_empty());
    }
}

//! Derive macros for the vendored `serde` shim.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses — non-generic named-field structs
//! and non-generic enums with unit / named / tuple variants — by walking
//! the raw token stream directly (the build environment has no crates.io
//! access, so `syn`/`quote` are unavailable).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What a parsed item turned out to be.
enum Item {
    /// Named-field struct: field identifiers in declaration order.
    Struct { name: String, fields: Vec<String> },
    /// Enum with the given variants.
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

enum VariantKind {
    Unit,
    /// Named fields, in order.
    Struct(Vec<String>),
    /// Number of positional fields.
    Tuple(usize),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

/// Splits a brace/paren group body at top-level commas.
fn split_commas(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    for t in tokens {
        match &t {
            TokenTree::Punct(p) if p.as_char() == ',' => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(t),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Strips leading attributes (`#[...]`, which is also how doc comments
/// arrive) and a `pub` / `pub(...)` visibility prefix.
fn strip_attrs_and_vis(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2; // '#' then the [...] group
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    &tokens[i..]
}

/// First identifier of a (attr/vis-stripped) field or variant chunk.
fn leading_ident(tokens: &[TokenTree]) -> Option<String> {
    match strip_attrs_and_vis(tokens).first() {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

fn parse_named_fields(group_tokens: Vec<TokenTree>) -> Vec<String> {
    split_commas(group_tokens)
        .iter()
        .filter(|chunk| !chunk.is_empty())
        .filter_map(|chunk| leading_ident(chunk))
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let tokens = strip_attrs_and_vis(&tokens);
    let mut iter = tokens.iter();

    let mut kind = None;
    for t in iter.by_ref() {
        if let TokenTree::Ident(id) = t {
            let s = id.to_string();
            if s == "struct" || s == "enum" {
                kind = Some(s);
                break;
            }
        }
    }
    let kind = kind.expect("serde_derive: expected `struct` or `enum`");

    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };

    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                break g.stream().into_iter().collect::<Vec<_>>();
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde_derive: generic items are not supported by the vendored shim")
            }
            Some(_) => continue,
            None => {
                panic!("serde_derive: `{name}` has no braced body (tuple/unit structs unsupported)")
            }
        }
    };

    if kind == "struct" {
        Item::Struct {
            name,
            fields: parse_named_fields(body),
        }
    } else {
        let variants = split_commas(body)
            .into_iter()
            .filter(|chunk| !chunk.is_empty())
            .map(|chunk| {
                let chunk = strip_attrs_and_vis(&chunk);
                let vname = match chunk.first() {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    other => panic!("serde_derive: expected variant name, found {other:?}"),
                };
                let kind = match chunk.get(1) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        VariantKind::Struct(parse_named_fields(g.stream().into_iter().collect()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let arity = split_commas(g.stream().into_iter().collect())
                            .iter()
                            .filter(|c| !c.is_empty())
                            .count();
                        VariantKind::Tuple(arity)
                    }
                    _ => VariantKind::Unit,
                };
                Variant { name: vname, kind }
            })
            .collect();
        Item::Enum { name, variants }
    }
}

/// Derives `serde::Serialize` for a non-generic struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => {
            let mut code = format!(
                "let mut state = ::serde::Serializer::serialize_struct(serializer, \"{name}\", {})?;\n",
                fields.len()
            );
            for f in fields {
                code.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut state, \"{f}\", &self.{f})?;\n"
                ));
            }
            code.push_str("::serde::ser::SerializeStruct::end(state)");
            code
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => ::serde::Serializer::serialize_unit_variant(serializer, \"{name}\", {idx}u32, \"{vname}\"),\n"
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let pat = fields.join(", ");
                        let mut arm = format!(
                            "{name}::{vname} {{ {pat} }} => {{\nlet mut state = ::serde::Serializer::serialize_struct_variant(serializer, \"{name}\", {idx}u32, \"{vname}\", {})?;\n",
                            fields.len()
                        );
                        for f in fields {
                            arm.push_str(&format!(
                                "::serde::ser::SerializeStructVariant::serialize_field(&mut state, \"{f}\", {f})?;\n"
                            ));
                        }
                        arm.push_str("::serde::ser::SerializeStructVariant::end(state)\n}\n");
                        arms.push_str(&arm);
                    }
                    VariantKind::Tuple(arity) => {
                        let binders: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        let pat = binders.join(", ");
                        let mut arm = format!(
                            "{name}::{vname}({pat}) => {{\nlet mut state = ::serde::Serializer::serialize_tuple_variant(serializer, \"{name}\", {idx}u32, \"{vname}\", {arity})?;\n"
                        );
                        for b in &binders {
                            arm.push_str(&format!(
                                "::serde::ser::SerializeTupleVariant::serialize_field(&mut state, {b})?;\n"
                            ));
                        }
                        arm.push_str("::serde::ser::SerializeTupleVariant::end(state)\n}\n");
                        arms.push_str(&arm);
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let name = match &item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn serialize<S: ::serde::Serializer>(&self, serializer: S) \
         -> ::core::result::Result<S::Ok, S::Error> {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .expect("serde_derive: generated impl parses")
}

/// Derives the marker `serde::Deserialize` for a non-generic item.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = match &item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!("#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{}}\n")
        .parse()
        .expect("serde_derive: generated impl parses")
}

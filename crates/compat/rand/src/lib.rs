//! Minimal vendored stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the slice of `rand`'s API it uses: the [`Rng`]/[`RngCore`] traits,
//! [`SeedableRng`] with `seed_from_u64`, a deterministic [`rngs::StdRng`]
//! (xoshiro256++ under the hood), uniform [`Rng::gen_range`] over integer
//! and float ranges, [`seq::SliceRandom`] shuffling, and the [`Standard`]
//! distribution for `gen`/`sample_iter`.
//!
//! Streams are *not* bit-compatible with the real `rand` crate; every test
//! in this workspace compares runs against each other (same-seed
//! reproducibility), never against externally recorded streams.
//!
//! [`Standard`]: distributions::Standard

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level uniform bit generation.
pub trait RngCore {
    /// The next 32 uniform bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    ///
    /// [`Standard`]: distributions::Standard
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution as _;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        self.gen::<f64>() < p
    }

    /// An iterator of samples from `dist`.
    fn sample_iter<T, D>(self, dist: D) -> distributions::DistIter<D, Self, T>
    where
        D: distributions::Distribution<T>,
        Self: Sized,
    {
        distributions::DistIter {
            dist,
            rng: self,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of deterministic generators from seeds.
pub trait SeedableRng: Sized {
    /// Derives a full seed state from one `u64` via SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that can be sampled uniformly; implemented for the standard
/// `Range`/`RangeInclusive` over the workspace's numeric types.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Lemire-style rejection sampling for unbiased bounded ints.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return self.start + (v % span) as $ty;
                    }
                }
            }
        }

        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                if start == 0 && end == <$ty>::MAX {
                    return rng.next_u64() as $ty;
                }
                (start..end + 1).sample_from(rng)
            }
        }
    )*};
}

int_range_impls!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f64_from_bits53(rng.next_u64());
        self.start + unit * (self.end - self.start)
    }
}

/// Uniform `f64` in `[0, 1)` from the top 53 bits of a `u64`.
fn f64_from_bits53(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// SplitMix64 step, used for seeding.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generator types.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Small state, passes BigCrush, and — unlike the real `rand`'s ChaCha
    /// core — trivially auditable. Not cryptographically secure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions usable with [`Rng::gen`] and [`Rng::sample_iter`].
pub mod distributions {
    use super::{f64_from_bits53, RngCore};

    /// A way to turn uniform bits into values of `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The canonical distribution: uniform over all values (integers) or
    /// uniform in `[0, 1)` (floats).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            f64_from_bits53(rng.next_u64())
        }
    }

    /// Iterator returned by [`Rng::sample_iter`](super::Rng::sample_iter).
    #[derive(Debug)]
    pub struct DistIter<D, R, T> {
        pub(crate) dist: D,
        pub(crate) rng: R,
        pub(crate) _marker: std::marker::PhantomData<T>,
    }

    impl<D, R, T> Iterator for DistIter<D, R, T>
    where
        D: Distribution<T>,
        R: RngCore,
    {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            Some(self.dist.sample(&mut self.rng))
        }
    }
}

/// Random selection and permutation over slices.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions: shuffling and random choice.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::Standard;
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a: u64 = StdRng::seed_from_u64(1).gen();
        let b: u64 = StdRng::seed_from_u64(2).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(5..17);
            assert!((5..17).contains(&x));
            let y: f64 = rng.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&y));
            let z: usize = rng.gen_range(2..=4);
            assert!((2..=4).contains(&z));
        }
    }

    #[test]
    fn unit_floats_are_in_unit_interval_and_spread() {
        let mut rng = StdRng::seed_from_u64(4);
        let xs: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>()).collect();
        assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_int_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[rng.gen_range(0..7usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50! odds of identity");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(6);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn sample_iter_draws_from_distribution() {
        let rng = StdRng::seed_from_u64(8);
        let xs: Vec<u32> = rng.sample_iter(Standard).take(5).collect();
        assert_eq!(xs.len(), 5);
        let rng2 = StdRng::seed_from_u64(8);
        let ys: Vec<u32> = rng2.sample_iter(Standard).take(5).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }
}

//! Minimal vendored stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the benchmarking surface it uses: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`] / `bench_function`,
//! [`Bencher::iter`], [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurements are wall-clock medians over `sample_size` samples, each
//! sample timing an auto-calibrated batch of iterations. Results print to
//! stdout; when the `NETDECOMP_BENCH_JSON` environment variable names a
//! file, a JSON array of `{group, bench, median_ns, mean_ns, samples,
//! iters_per_sample}` records is also written so runs can be checked in as
//! artifacts. Benchmarks may additionally report non-timing work counters
//! through [`BenchmarkGroup::report_metric`]; these land in the same
//! array as `{group, bench, metric, value}` rows, so measured claims
//! (e.g. "header work is O(messages)") are visible in the checked-in
//! JSON next to the timings they explain. The JSON header records the
//! box's `available_parallelism`, and `NETDECOMP_BENCH_NOTE` (if set) is
//! copied into a `note` field — use it to flag runs whose environment
//! limits what they can show (e.g. a single-CPU container that can only
//! measure overhead, not speedup).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// One finished measurement.
#[derive(Debug, Clone)]
struct Record {
    group: String,
    bench: String,
    kind: RecordKind,
}

/// What a record measured: wall-clock time or a reported work counter.
#[derive(Debug, Clone)]
enum RecordKind {
    Timing {
        median_ns: f64,
        mean_ns: f64,
        samples: usize,
        iters_per_sample: u64,
    },
    Metric {
        metric: String,
        value: f64,
    },
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    records: Vec<Record>,
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }

    fn flush(&self) {
        let Ok(path) = std::env::var("NETDECOMP_BENCH_JSON") else {
            return;
        };
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let mut out = format!("{{\n  \"available_parallelism\": {threads},\n");
        if let Ok(note) = std::env::var("NETDECOMP_BENCH_NOTE") {
            // Keep the writer dependency-free: drop the characters that
            // would need escaping inside a JSON string literal.
            let escaped: String = note
                .chars()
                .filter(|c| *c != '"' && *c != '\\' && !c.is_control())
                .collect();
            out.push_str(&format!("  \"note\": \"{escaped}\",\n"));
        }
        out.push_str("  \"results\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            match &r.kind {
                RecordKind::Timing {
                    median_ns,
                    mean_ns,
                    samples,
                    iters_per_sample,
                } => out.push_str(&format!(
                    "    {{\"group\":\"{}\",\"bench\":\"{}\",\"median_ns\":{median_ns:.0},\"mean_ns\":{mean_ns:.0},\"samples\":{samples},\"iters_per_sample\":{iters_per_sample}}}",
                    r.group, r.bench
                )),
                RecordKind::Metric { metric, value } => out.push_str(&format!(
                    "    {{\"group\":\"{}\",\"bench\":\"{}\",\"metric\":\"{metric}\",\"value\":{value:.0}}}",
                    r.group, r.bench
                )),
            }
        }
        out.push_str("\n  ]\n}\n");
        if let Err(e) = std::fs::write(&path, &out) {
            eprintln!("criterion shim: cannot write {path}: {e}");
        }
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A named benchmark id, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id labeled `name/parameter`.
    #[must_use]
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id from a parameter alone.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: impl Display, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id, |b| f(b, input));
    }

    /// Benchmarks `f` without input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        self.run(id, |b| f(b));
    }

    /// Reports a non-timing work counter (e.g. items scanned per
    /// iteration) as its own result row; `metric` names what `value`
    /// counts.
    pub fn report_metric(&mut self, id: impl Display, metric: &str, value: f64) {
        let label = id.to_string();
        println!(
            "{:<40} {metric} {value:.0}",
            format!("{}/{}", self.name, label)
        );
        self.criterion.records.push(Record {
            group: self.name.clone(),
            bench: label,
            kind: RecordKind::Metric {
                metric: metric.to_string(),
                value,
            },
        });
    }

    fn run(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters: 1,
            calibrated: false,
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let mut ns: Vec<f64> = bencher.samples.clone();
        if ns.is_empty() {
            return;
        }
        ns.sort_by(f64::total_cmp);
        let median = ns[ns.len() / 2];
        let mean = ns.iter().sum::<f64>() / ns.len() as f64;
        let label = id.to_string();
        println!(
            "{:<40} median {:>12.1} ns/iter  mean {:>12.1} ns/iter  ({} samples x {} iters)",
            format!("{}/{}", self.name, label),
            median,
            mean,
            ns.len(),
            bencher.iters
        );
        self.criterion.records.push(Record {
            group: self.name.clone(),
            bench: label,
            kind: RecordKind::Timing {
                median_ns: median,
                mean_ns: mean,
                samples: ns.len(),
                iters_per_sample: bencher.iters,
            },
        });
    }

    /// Ends the group (stdout spacing only).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    /// Per-sample nanoseconds per iteration.
    samples: Vec<f64>,
    iters: u64,
    calibrated: bool,
    sample_size: usize,
}

impl Bencher {
    /// Runs and times `f`, recording `sample_size` samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if !self.calibrated {
            // Calibrate the batch size so one sample takes >= ~5 ms,
            // bounding total time while keeping timer noise negligible.
            let start = Instant::now();
            black_box(f());
            let one = start.elapsed().as_nanos().max(1);
            self.iters = ((5_000_000 / one) as u64).clamp(1, 1_000_000);
            self.calibrated = true;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters {
                black_box(f());
            }
            let total = start.elapsed().as_nanos() as f64;
            self.samples.push(total / self.iters as f64);
        }
    }
}

/// Declares a benchmark entry function running the given benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench_fn:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($bench_fn(&mut criterion);)+
        }
    };
}

/// Declares `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(3);
            g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
            g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
            g.report_metric("noop/work", "items_per_iter", 42.0);
            g.finish();
        }
        assert_eq!(c.records.len(), 3);
        assert!(c.records.iter().all(|r| match &r.kind {
            RecordKind::Timing { median_ns, .. } => *median_ns >= 0.0,
            RecordKind::Metric { value, .. } => *value >= 0.0,
        }));
        assert_eq!(c.records[1].bench, "sum/10");
        assert!(matches!(
            &c.records[2].kind,
            RecordKind::Metric { metric, value: v } if metric == "items_per_iter" && *v == 42.0
        ));
    }
}

//! Wall-clock benches of the graph substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netdecomp_bench::workloads::Family;
use netdecomp_graph::{bfs, components, generators, VertexSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    for &n in &[1024usize, 8192] {
        group.bench_with_input(BenchmarkId::new("gnp", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                generators::gnp(n, 6.0 / n as f64, &mut rng).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("random_regular", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                generators::random_regular(n, 4, &mut rng).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("barabasi_albert", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                generators::barabasi_albert(n, 3, &mut rng).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfs");
    for &n in &[1024usize, 8192] {
        let g = Family::Gnp { avg_degree: 6.0 }.build(n, 7);
        group.bench_with_input(BenchmarkId::new("distances", n), &g, |b, g| {
            b.iter(|| bfs::distances(g, 0))
        });
        let alive = VertexSet::full(g.vertex_count());
        group.bench_with_input(BenchmarkId::new("restricted", n), &g, |b, g| {
            b.iter(|| bfs::distances_restricted(g, 0, &alive))
        });
    }
    group.finish();
}

fn bench_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("components");
    for &n in &[1024usize, 8192] {
        let g = Family::Gnp { avg_degree: 2.0 }.build(n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| components::components(g))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generators, bench_bfs, bench_components);
criterion_main!(benches);

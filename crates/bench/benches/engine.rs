//! Sequential vs. sharded-parallel `Simulator::step` throughput on large
//! graphs, plus delivery-phase micro-benchmarks for both routing regimes.
//!
//! Three groups per graph:
//!
//! - `engine_step/*` — a carve-shaped workload: every node broadcasts a
//!   14-byte wire entry each round and decodes + rank-updates everything
//!   it hears, so compute and delivery both do real work.
//! - `engine_delivery/*` — the broadcast-heavy delivery-bound regime:
//!   every node broadcasts one preencoded payload (a reference-count
//!   bump) and ignores what it hears, so a step is almost entirely the
//!   routed bucket-sort delivery (2m copies per round, routed through the
//!   precomputed adjacency segmentation).
//! - `engine_delivery_unicast/*` — the unicast-heavy regime: every node
//!   sends one preencoded payload to a rotating neighbor (n copies per
//!   round, routed message-by-message through the flat vertex→shard
//!   table).
//!
//! Delivery variants pin `threads: 1` and sweep the shard count *and the
//! delivery backend*, which isolates the per-stage overheads on a
//! single-CPU box: `sharded_k` vs `sharded_1` prices recipient-range
//! sharding, `framed_loopback_k` vs `sharded_k` prices the frame seam
//! (bucket encode + checksum + decode + payload slicing),
//! `framed_channel_k` adds the per-shard mailbox hop, and the `_v1`
//! variants pin the previous byte-serial wire format so the v2
//! word-parallel digest's cut is a measured delta, not a claim
//! (multicore speedups need a multicore re-run, see ROADMAP). Each
//! delivery variant also reports the place phase's measured work
//! counters (`place_refs_per_round`, `place_copies_per_round`, and for
//! framed variants `frame_bytes_per_round` — the volume a
//! process-per-shard transport would put on the wire — plus
//! `checksum_ns_per_round`, the decode-side frame validation time under
//! the variant's wire format) so the header-work bound is visible
//! in the checked-in JSON rather than only in prose: unicast refs stay
//! exactly flat (= messages) across the shard sweep, and broadcast refs
//! grow only with adjacency-segment fragmentation — bounded by `copies`
//! (`min(degree, shards)` per broadcast), never by a `shards ×` rescan
//! multiplier.
//!
//! Results (with the machine's available parallelism) are written to the
//! file named by `NETDECOMP_BENCH_JSON`; the checked-in
//! `BENCH_engine.json` at the repo root records one such run.
//!
//! ```text
//! NETDECOMP_BENCH_JSON=BENCH_engine.json \
//!     cargo bench -p netdecomp-bench --bench engine
//! ```

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netdecomp_bench::workloads::Family;
use netdecomp_graph::Graph;
use netdecomp_sim::wire::{WireReader, WireWriter};
use netdecomp_sim::{
    Codec, Ctx, Engine, FrameConfig, FrameTransport, Inbox, Outbox, Protocol, Simulator, Typed,
    TypedOutbox, TypedProtocol,
};

/// A carve-like wire entry: `(origin: u32, score: f64, dist: u16)`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    origin: u32,
    score: f64,
    dist: u16,
}

struct EntryCodec;

impl Codec for EntryCodec {
    type Msg = Entry;

    fn encode(e: &Entry) -> Bytes {
        WireWriter::new()
            .u32(e.origin)
            .f64(e.score)
            .u16(e.dist)
            .finish()
    }

    fn decode(payload: &[u8]) -> Option<Entry> {
        let mut r = WireReader::new(payload);
        let origin = r.u32()?;
        let score = r.f64()?;
        let dist = r.u16()?;
        r.is_exhausted().then_some(Entry {
            origin,
            score,
            dist,
        })
    }
}

/// Broadcasts its best-known entry every round; keeps a top-two ranking of
/// everything heard. Deterministic, never halts, constant message volume
/// (2m entries per round) — a steady-state `step` workload.
#[derive(Debug, Clone)]
struct Ranker {
    best: Entry,
    second: Option<Entry>,
}

impl Ranker {
    fn new(id: usize) -> Self {
        Ranker {
            best: Entry {
                origin: id as u32,
                // Deterministic pseudo-random initial score.
                score: f64::from((id as u32).wrapping_mul(2_654_435_761) >> 8),
                dist: 0,
            },
            second: None,
        }
    }

    fn offer(&mut self, e: Entry) {
        if e.score > self.best.score {
            self.second = Some(self.best);
            self.best = e;
        } else if e.origin != self.best.origin && self.second.is_none_or(|s| e.score > s.score) {
            self.second = Some(e);
        }
    }
}

impl TypedProtocol for Ranker {
    type Codec = EntryCodec;

    fn start(&mut self, _ctx: &Ctx<'_>, out: &mut TypedOutbox<'_, EntryCodec>) {
        out.broadcast(&self.best);
    }

    fn round(
        &mut self,
        _ctx: &Ctx<'_>,
        incoming: &[(usize, Entry)],
        out: &mut TypedOutbox<'_, EntryCodec>,
    ) {
        for &(_, mut e) in incoming {
            e.dist = e.dist.saturating_add(1);
            self.offer(e);
        }
        out.broadcast(&self.best);
    }
}

/// Delivery-bound steady-state workload: broadcast one shared payload,
/// read nothing, so stepping is dominated by the delivery bucket sort.
#[derive(Debug, Clone)]
struct Pulse {
    payload: Bytes,
}

impl Protocol for Pulse {
    fn start(&mut self, _ctx: &Ctx<'_>, out: &mut Outbox) {
        out.broadcast(self.payload.clone());
    }

    fn round(&mut self, _ctx: &Ctx<'_>, _incoming: Inbox<'_>, out: &mut Outbox) {
        out.broadcast(self.payload.clone());
    }
}

/// Unicast-heavy delivery-bound workload: one preencoded payload to a
/// rotating neighbor per round, read nothing — stepping is dominated by
/// per-message (vertex→shard) routing and singleton-ref delivery.
#[derive(Debug, Clone)]
struct Dart {
    payload: Bytes,
    tick: usize,
}

impl Protocol for Dart {
    fn start(&mut self, ctx: &Ctx<'_>, out: &mut Outbox) {
        if ctx.degree() > 0 {
            out.unicast(ctx.neighbors()[0], self.payload.clone());
        }
    }

    fn round(&mut self, ctx: &Ctx<'_>, _incoming: Inbox<'_>, out: &mut Outbox) {
        self.tick += 1;
        if ctx.degree() > 0 {
            out.unicast(
                ctx.neighbors()[self.tick % ctx.degree()],
                self.payload.clone(),
            );
        }
    }
}

fn bench_graph(c: &mut Criterion, label: &str, g: &Graph) {
    let mut group = c.benchmark_group(format!("engine_step/{label}"));
    group.sample_size(12);
    for (name, engine) in [
        ("sequential", Engine::Sequential),
        (
            "parallel_2",
            Engine::Parallel {
                threads: 2,
                shards: 2,
            },
        ),
        (
            "parallel_8",
            Engine::Parallel {
                threads: 8,
                shards: 8,
            },
        ),
    ] {
        group.bench_with_input(BenchmarkId::new(name, g.vertex_count()), g, |b, g| {
            let mut sim =
                Simulator::new(g, |id, _| Typed::new(Ranker::new(id))).with_engine(engine);
            // Prime past the start round so every step is steady-state.
            sim.step().unwrap();
            b.iter(|| sim.step().unwrap());
        });
    }
    group.finish();
}

/// The delivery-bench engine sweep: `threads: 1` throughout, so the
/// variants differ only in shard count, delivery backend, and — for the
/// framed entries — wire-format version. The `framed_*` entries run the
/// same rounds through the frame seam — encode every bucket into a
/// checksummed self-delimiting frame, ship it (in-memory loopback or
/// mpsc channel), decode, and place from payload slices — so
/// `framed_loopback_k` vs `sharded_k` prices the seam itself and
/// `framed_channel_k` adds the mailbox hop. The `_v1` variants pin the
/// previous byte-serial digest, so `framed_loopback_4` vs
/// `framed_loopback_4_v1` prices the v2 word-parallel digest (the
/// `checksum_ns_per_round` rows report its decode side directly).
/// `None` in the third column leaves the frame config at the default
/// (the newest format); it must be `None` for non-framed engines.
const DELIVERY_ENGINES: [(&str, Engine, Option<FrameConfig>); 11] = [
    ("sequential", Engine::Sequential, None),
    (
        "sharded_1",
        Engine::Parallel {
            threads: 1,
            shards: 1,
        },
        None,
    ),
    (
        "sharded_2",
        Engine::Parallel {
            threads: 1,
            shards: 2,
        },
        None,
    ),
    (
        "sharded_4",
        Engine::Parallel {
            threads: 1,
            shards: 4,
        },
        None,
    ),
    (
        "sharded_8",
        Engine::Parallel {
            threads: 1,
            shards: 8,
        },
        None,
    ),
    (
        "framed_loopback_4",
        Engine::Framed {
            threads: 1,
            shards: 4,
            transport: FrameTransport::Loopback,
        },
        None,
    ),
    (
        "framed_loopback_4_v1",
        Engine::Framed {
            threads: 1,
            shards: 4,
            transport: FrameTransport::Loopback,
        },
        Some(FrameConfig {
            version: 1,
            cover_payload: false,
        }),
    ),
    (
        "framed_loopback_8",
        Engine::Framed {
            threads: 1,
            shards: 8,
            transport: FrameTransport::Loopback,
        },
        None,
    ),
    (
        "framed_channel_4",
        Engine::Framed {
            threads: 1,
            shards: 4,
            transport: FrameTransport::Channel,
        },
        None,
    ),
    (
        "framed_channel_4_v1",
        Engine::Framed {
            threads: 1,
            shards: 4,
            transport: FrameTransport::Channel,
        },
        Some(FrameConfig {
            version: 1,
            cover_payload: false,
        }),
    ),
    (
        // The same rounds over real Unix-domain sockets through the hub:
        // `framed_socket_4` vs `framed_channel_4` prices crossing a true
        // kernel boundary (syscalls + copies) over the in-process
        // mailbox hop.
        "framed_socket_4",
        Engine::Framed {
            threads: 1,
            shards: 4,
            transport: FrameTransport::Socket,
        },
        None,
    ),
];

fn bench_delivery_workload<P, F>(c: &mut Criterion, group_name: &str, g: &Graph, make: F)
where
    P: Protocol + Send + Clone,
    F: Fn() -> P,
{
    let mut group = c.benchmark_group(group_name);
    group.sample_size(12);
    for (name, engine, frame_config) in DELIVERY_ENGINES {
        group.bench_with_input(BenchmarkId::new(name, g.vertex_count()), g, |b, g| {
            let mut sim = Simulator::new(g, |_, _| make()).with_engine(engine);
            if let Some(config) = frame_config {
                sim = sim.with_frame_config(config);
            }
            sim.step().unwrap();
            b.iter(|| sim.step().unwrap());
        });
        // Measured place-phase work for this engine: steady-state refs
        // and copies per round. Unicast refs stay flat at `messages`
        // across the shard sweep; broadcast refs are bounded by copies
        // (segment fragmentation), with no shards× rescan multiplier.
        // Payload registrations track refs (per *message*), not copies —
        // the slab-backed inbox's defining ratio — and the slot bytes are
        // the entire per-copy memory traffic (8 bytes per copy).
        let mut probe = Simulator::new(g, |_, _| make()).with_engine(engine);
        if let Some(config) = frame_config {
            probe = probe.with_frame_config(config);
        }
        probe.step().unwrap();
        probe.step().unwrap();
        let work = probe.delivery_work();
        let id = format!("{name}/{}", g.vertex_count());
        group.report_metric(&id, "place_refs_per_round", work.refs_scanned as f64);
        group.report_metric(&id, "place_copies_per_round", work.copies_delivered as f64);
        group.report_metric(
            &id,
            "payload_registrations_per_round",
            work.payload_registrations as f64,
        );
        group.report_metric(
            &id,
            "inbox_slot_bytes_per_round",
            work.inbox_slot_bytes as f64,
        );
        if matches!(engine, Engine::Framed { .. }) {
            group.report_metric(&id, "frame_bytes_per_round", work.frame_bytes as f64);
            // Decode-side frame validation time (header parse + the fused
            // checksum/structure walk) for the variant's pinned wire
            // format — the v1 vs v2 rows price the word-parallel digest.
            group.report_metric(&id, "checksum_ns_per_round", work.checksum_ns as f64);
            // Transport health (cumulative over the probe run): retries
            // and injected drops are zero on a healthy in-process run
            // (nonzero rows flag a flaky fabric); collect_wait is the
            // receive-side blocking time and prices the socket hop
            // against the in-memory backends.
            group.report_metric(&id, "frames_retried", work.frames_retried as f64);
            group.report_metric(
                &id,
                "frames_dropped_injected",
                work.frames_dropped_injected as f64,
            );
            group.report_metric(&id, "collect_wait_ns", work.collect_wait_ns as f64);
        }
    }
    group.finish();
}

fn bench_delivery(c: &mut Criterion, label: &str, g: &Graph) {
    let payload = Bytes::from_static(&[7u8; 14]);
    let broadcast_payload = payload.clone();
    bench_delivery_workload(c, &format!("engine_delivery/{label}"), g, move || Pulse {
        payload: broadcast_payload.clone(),
    });
    bench_delivery_workload(
        c,
        &format!("engine_delivery_unicast/{label}"),
        g,
        move || Dart {
            payload: payload.clone(),
            tick: 0,
        },
    );
}

fn bench_engines(c: &mut Criterion) {
    let gnp = Family::Gnp { avg_degree: 8.0 }.build(50_000, 42);
    bench_graph(c, "gnp_50k", &gnp);
    bench_delivery(c, "gnp_50k", &gnp);
    let grid = netdecomp_graph::generators::grid2d(300, 300);
    bench_graph(c, "grid2d_300x300", &grid);
    bench_delivery(c, "grid2d_300x300", &grid);
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);

//! Wall-clock benches of the message-passing execution (E5 engine):
//! distributed (simulator) vs. centralized simulation, and top-two pruning
//! vs. full forwarding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netdecomp_bench::workloads::Family;
use netdecomp_core::distributed::{decompose_distributed, DistributedConfig, Forwarding};
use netdecomp_core::{basic, params};
use netdecomp_sim::Engine;

fn bench_distributed_vs_central(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed_vs_central");
    group.sample_size(10);
    let n = 256usize;
    let g = Family::Gnp { avg_degree: 6.0 }.build(n, 7);
    let p = params::DecompositionParams::new(3, 4.0).unwrap();
    group.bench_with_input(BenchmarkId::new("central", n), &g, |b, g| {
        b.iter(|| basic::decompose(g, &p, 1).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("congest_top2", n), &g, |b, g| {
        b.iter(|| decompose_distributed(g, &p, 1, &DistributedConfig::default()).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("congest_top2_parallel", n), &g, |b, g| {
        b.iter(|| {
            decompose_distributed(
                g,
                &p,
                1,
                &DistributedConfig {
                    engine: Engine::Parallel {
                        threads: 0,
                        shards: 0,
                    },
                    ..DistributedConfig::default()
                },
            )
            .unwrap()
        })
    });
    group.bench_with_input(BenchmarkId::new("local_full", n), &g, |b, g| {
        b.iter(|| {
            decompose_distributed(
                g,
                &p,
                1,
                &DistributedConfig {
                    forwarding: Forwarding::Full,
                    ..DistributedConfig::default()
                },
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_distributed_vs_central);
criterion_main!(benches);

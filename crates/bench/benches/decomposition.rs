//! Wall-clock benches of the three theorem algorithms (E1–E3 engines).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netdecomp_bench::workloads::Family;
use netdecomp_core::{basic, high_radius, params, staged};

fn bench_basic(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem1_basic");
    for &n in &[256usize, 1024] {
        for family in [Family::Gnp { avg_degree: 6.0 }, Family::Grid] {
            let g = family.build(n, 7);
            let p = params::DecompositionParams::new(3, 4.0).unwrap();
            group.bench_with_input(BenchmarkId::new(family.label(), n), &g, |b, g| {
                b.iter(|| basic::decompose(g, &p, 1).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_staged(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem2_staged");
    for &n in &[256usize, 1024] {
        let g = Family::Gnp { avg_degree: 6.0 }.build(n, 7);
        let p = params::StagedParams::new(3, 6.0).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| staged::decompose(g, &p, 1).unwrap())
        });
    }
    group.finish();
}

fn bench_high_radius(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem3_high_radius");
    for &n in &[256usize, 1024] {
        let g = Family::Cycle.build(n, 7);
        let p = params::HighRadiusParams::new(3, 4.0).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| high_radius::decompose(g, &p, 1).unwrap())
        });
    }
    group.finish();
}

fn bench_headline_scaling(c: &mut Criterion) {
    // k = ln n across sizes: the O(log n, log n) regime the abstract leads
    // with.
    let mut group = c.benchmark_group("headline_k_ln_n");
    group.sample_size(10);
    for &n in &[256usize, 1024, 4096] {
        let g = Family::Gnp { avg_degree: 6.0 }.build(n, 7);
        let p = params::DecompositionParams::for_graph_size(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| basic::decompose(g, &p, 1).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_basic,
    bench_staged,
    bench_high_radius,
    bench_headline_scaling
);
criterion_main!(benches);

//! Wall-clock benches of the applications (E11 engine).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netdecomp_apps::{coloring, luby, matching, mis};
use netdecomp_bench::workloads::Family;
use netdecomp_core::{basic, params};

fn bench_apps(c: &mut Criterion) {
    let mut group = c.benchmark_group("applications");
    let n = 1024usize;
    let g = Family::Gnp { avg_degree: 6.0 }.build(n, 7);
    let p = params::DecompositionParams::new(3, 4.0).unwrap();
    let outcome = basic::decompose(&g, &p, 1).unwrap();
    let d = outcome.decomposition();

    group.bench_with_input(BenchmarkId::new("mis_sweep", n), &g, |b, g| {
        b.iter(|| mis::solve(g, d).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("coloring_sweep", n), &g, |b, g| {
        b.iter(|| coloring::solve(g, d).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("matching_sweep", n), &g, |b, g| {
        b.iter(|| matching::solve(g, d).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("luby_direct", n), &g, |b, g| {
        b.iter(|| luby::solve(g, 1))
    });
    group.finish();
}

criterion_group!(benches, bench_apps);
criterion_main!(benches);

//! Wall-clock benches of the baselines (E4 and E10 engines).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netdecomp_baselines::{ball_carving, linial_saks, mpx};
use netdecomp_bench::workloads::Family;

fn bench_linial_saks(c: &mut Criterion) {
    let mut group = c.benchmark_group("linial_saks");
    for &n in &[256usize, 1024] {
        let g = Family::Gnp { avg_degree: 6.0 }.build(n, 7);
        let p = linial_saks::LinialSaksParams::new(3, 4.0).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| linial_saks::decompose(g, &p, 1).unwrap())
        });
    }
    group.finish();
}

fn bench_mpx(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpx_padded_partition");
    for &n in &[256usize, 1024, 4096] {
        let g = Family::Gnp { avg_degree: 6.0 }.build(n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| mpx::padded_partition(g, 0.2, 1).unwrap())
        });
    }
    group.finish();
}

fn bench_ball_carving(c: &mut Criterion) {
    let mut group = c.benchmark_group("ball_carving");
    for &n in &[256usize, 1024] {
        let g = Family::Grid.build(n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| ball_carving::carve(g, 0.2).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_linial_saks, bench_mpx, bench_ball_carving);
criterion_main!(benches);

//! Experiment harness regenerating every quantitative statement of the
//! paper.
//!
//! The paper is a theory extended abstract — its "evaluation" is its
//! theorems and lemmas. Each experiment module measures one of them and
//! prints *paper bound vs. measured value* as an aligned table (see
//! `DESIGN.md` §1 for the full index):
//!
//! | id  | statement |
//! |-----|-----------|
//! | e1  | Theorem 1 (basic algorithm: diameter / colors / rounds / success) |
//! | e2  | Theorem 2 (staged algorithm: improved color bound) |
//! | e3  | Theorem 3 (high-radius regime) |
//! | e4  | headline vs. Linial–Saks: strong vs. weak diameter |
//! | e5  | CONGEST message accounting: top-two pruning vs. full flood |
//! | e6  | Lemma 5: shifted-exponential order statistics |
//! | e7  | Claim 6 / Corollary 7: per-phase survival |
//! | e8  | Claim 8: staged survival per stage |
//! | e9  | Lemma 1: truncation events `E_v` |
//! | e10 | MPX13 padded-partition substrate |
//! | e11 | §1.1 applications: MIS / coloring / matching in `O(D·χ)` |
//! | e12 | the (diameter, colors) tradeoff frontier |
//!
//! Run them all: `cargo run -p netdecomp-bench --release --bin tables -- all`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod json;
pub mod runner;
pub mod stats;
pub mod table;
pub mod workloads;

/// Effort level of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Effort {
    /// Small sizes / few trials — seconds per experiment, used in CI and by
    /// default.
    #[default]
    Quick,
    /// The full sweep reported in `EXPERIMENTS.md`.
    Full,
}

impl Effort {
    /// Scales a trial count.
    #[must_use]
    pub fn trials(&self, quick: usize, full: usize) -> usize {
        match self {
            Effort::Quick => quick,
            Effort::Full => full,
        }
    }

    /// Picks a size list.
    #[must_use]
    pub fn sizes<'a>(&self, quick: &'a [usize], full: &'a [usize]) -> &'a [usize] {
        match self {
            Effort::Quick => quick,
            Effort::Full => full,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_selects() {
        assert_eq!(Effort::Quick.trials(2, 20), 2);
        assert_eq!(Effort::Full.trials(2, 20), 20);
        assert_eq!(Effort::Quick.sizes(&[1], &[2]), &[1]);
        assert_eq!(Effort::Full.sizes(&[1], &[2]), &[2]);
    }
}

//! E11 — the applications that motivated network decomposition (AGLP89,
//! recounted in §1.1): given a `(D, χ)` decomposition, MIS,
//! `(Δ+1)`-coloring and maximal matching are solved in `O(D·χ)` rounds by
//! the class sweep.
//!
//! Columns: the sweep's measured rounds vs. the `(2(k−1)+1)·χ` budget, the
//! end-to-end validity of each solution, and Luby's direct MIS rounds as
//! the classical comparison point (Luby wins on rounds for MIS alone; the
//! decomposition amortizes across *all three* problems and any number of
//! additional sweeps).

use netdecomp_apps::{coloring, luby, matching, mis, verify as app_verify};
use netdecomp_core::{basic, params::DecompositionParams};

use crate::runner::par_trials;
use crate::stats::summarize_usize;
use crate::table::Table;
use crate::workloads::default_families;
use crate::Effort;

struct Cell {
    sweep_rounds_mis: usize,
    sweep_rounds_matching: usize,
    budget: usize,
    luby_rounds: usize,
    all_valid: bool,
}

/// Runs the experiment.
#[must_use]
pub fn run(effort: Effort) -> Vec<Table> {
    let sizes = effort.sizes(&[256], &[256, 1024]).to_vec();
    let trials = effort.trials(6, 20);
    let k = 3usize;

    let mut table = Table::new(
        "E11: applications via the decomposition sweep (O(D*chi)) vs Luby",
        &[
            "family",
            "n",
            "chi",
            "O(D*chi) budget",
            "MIS rounds",
            "matching rounds",
            "luby rounds",
            "valid",
        ],
    );
    table.set_caption(format!(
        "decomposition: Theorem 1 with k = {k}, c = 4; budget = (2(k-1)+1) * chi; 'valid' = MIS maximal+independent, coloring proper in Delta+1, matching maximal; {trials} trials/cell"
    ));

    for family in default_families() {
        for &n in &sizes {
            let params = DecompositionParams::new(k, 4.0).expect("valid");
            let cells: Vec<Cell> = par_trials(trials, |seed| {
                let g = family.build(n, seed);
                let outcome = basic::decompose(&g, &params, seed).expect("decompose");
                let d = outcome.decomposition();
                let mis_r = mis::solve(&g, d).expect("mis");
                let col_r = coloring::solve(&g, d).expect("coloring");
                let mat_r = matching::solve(&g, d).expect("matching");
                let luby_r = luby::solve(&g, seed);
                let all_valid = app_verify::is_maximal_independent_set(&g, &mis_r.in_mis)
                    && app_verify::is_proper_coloring(&g, &col_r.colors, g.max_degree() + 1)
                    && app_verify::is_maximal_matching(&g, &mat_r.mate)
                    && app_verify::is_maximal_independent_set(&g, &luby_r.in_mis);
                Cell {
                    sweep_rounds_mis: mis_r.cost.rounds,
                    sweep_rounds_matching: mat_r.cost.rounds,
                    budget: (2 * (k - 1) + 1) * d.block_count(),
                    luby_rounds: luby_r.rounds,
                    all_valid,
                }
            });
            let n_eff = family.build(n, 0).vertex_count();
            let chi_proxy = cells
                .iter()
                .map(|c| c.budget / (2 * (k - 1) + 1))
                .max()
                .unwrap_or(0);
            let mis_rounds =
                summarize_usize(&cells.iter().map(|c| c.sweep_rounds_mis).collect::<Vec<_>>());
            let mat_rounds = summarize_usize(
                &cells
                    .iter()
                    .map(|c| c.sweep_rounds_matching)
                    .collect::<Vec<_>>(),
            );
            let budget = cells.iter().map(|c| c.budget).max().unwrap_or(0);
            let luby_rounds =
                summarize_usize(&cells.iter().map(|c| c.luby_rounds).collect::<Vec<_>>());
            let valid = cells.iter().all(|c| c.all_valid);
            table.push_row(vec![
                family.label(),
                n_eff.to_string(),
                chi_proxy.to_string(),
                budget.to_string(),
                format!("{}", mis_rounds.max as usize),
                format!("{}", mat_rounds.max as usize),
                format!("{}", luby_rounds.max as usize),
                valid.to_string(),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_all_valid() {
        let tables = run(Effort::Quick);
        let text = tables[0].to_string();
        assert!(!text.contains("| false |"), "invalid solution:\n{text}");
    }
}

//! E13 (ablation) — why the join margin is exactly 1.
//!
//! The rule `m₁ − m₂ > θ` with `θ = 1` is what the proof of Lemma 4 needs:
//! adjacent vertices see any origin's value differ by at most 1, so a
//! margin of 1 forces every vertex on a shortest path to the center to
//! join too (Claim 3). This ablation re-runs the carving loop with other
//! margins:
//!
//! - `θ < 1` joins more vertices per phase (fewer colors!) but breaks the
//!   strong-diameter argument — the violation column shows how often the
//!   `2k − 2` bound actually fails;
//! - `θ > 1` keeps the bound but pays in phases (= colors), since Lemma
//!   5's join probability shrinks.

use netdecomp_core::carve::carve_phase_with_margin;
use netdecomp_core::params::DecompositionParams;
use netdecomp_core::shift::ShiftSource;
use netdecomp_graph::{components, diameter, Graph, VertexSet};

use crate::runner::par_trials;
use crate::stats::{fraction, summarize_usize};
use crate::table::{fmt_f, Table};
use crate::workloads::Family;
use crate::Effort;

struct Run {
    max_strong_diameter: Option<usize>,
    phases: usize,
    violated: bool,
}

/// Carve to exhaustion with an explicit margin, measuring cluster diameters.
fn run_with_margin(g: &Graph, params: &DecompositionParams, seed: u64, margin: f64) -> Run {
    let n = g.vertex_count();
    let beta = params.beta(n);
    let cap = params.radius_cap();
    let source = ShiftSource::new(seed, beta).expect("valid beta");
    let mut alive = VertexSet::full(n);
    let mut phases = 0usize;
    let mut max_diam: Option<usize> = Some(0);
    let hard_max = params.phase_budget(n) * 64 + 1024;
    while !alive.is_empty() && phases < hard_max {
        let mut shifts = vec![0.0; n];
        for v in alive.iter() {
            shifts[v] = source.shift(phases as u64, v);
        }
        let result = carve_phase_with_margin(g, &alive, &shifts, cap, margin);
        let joined = result.joined();
        if !joined.is_empty() {
            let mut block = VertexSet::new(n);
            for &v in &joined {
                block.insert(v);
            }
            for group in components::components_restricted(g, &block).groups() {
                let mut members = VertexSet::new(n);
                for &v in &group {
                    members.insert(v);
                }
                match (max_diam, diameter::strong_diameter(g, &members)) {
                    (Some(best), Some(d)) => max_diam = Some(best.max(d)),
                    _ => max_diam = None,
                }
            }
            for &v in &joined {
                alive.remove(v);
            }
        }
        phases += 1;
    }
    let violated = max_diam.is_none_or(|d| d > params.diameter_bound());
    Run {
        max_strong_diameter: max_diam,
        phases,
        violated,
    }
}

/// Runs the experiment.
#[must_use]
pub fn run(effort: Effort) -> Vec<Table> {
    let n = 256usize;
    let trials = effort.trials(8, 30);
    let k = 4usize;
    let family = Family::Grid;
    let params = DecompositionParams::new(k, 4.0).expect("valid");

    let mut table = Table::new(
        "E13 (ablation): the join margin m1 - m2 > theta",
        &[
            "theta",
            "D bound",
            "D max measured",
            "violations",
            "phases mean",
            "phases max",
        ],
    );
    table.set_caption(format!(
        "paper uses theta = 1; grid n = {n}, k = {k}, c = 4, {trials} trials; violation = strong diameter above 2k-2 (or a disconnected block component)"
    ));

    for &margin in &[0.0f64, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0] {
        let runs: Vec<Run> = par_trials(trials, |seed| {
            let g = family.build(n, seed);
            run_with_margin(&g, &params, seed, margin)
        });
        let diam_max = runs
            .iter()
            .map(|r| r.max_strong_diameter)
            .collect::<Option<Vec<_>>>()
            .map(|v| v.into_iter().max().unwrap_or(0));
        let phases = summarize_usize(&runs.iter().map(|r| r.phases).collect::<Vec<_>>());
        let violations = fraction(&runs.iter().map(|r| r.violated).collect::<Vec<_>>());
        table.push_row(vec![
            fmt_f(margin),
            params.diameter_bound().to_string(),
            crate::table::fmt_diameter(diam_max),
            fmt_f(violations),
            fmt_f(phases.mean),
            format!("{}", phases.max as usize),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn margin_one_row_is_clean_and_small_margins_violate() {
        let tables = run(Effort::Quick);
        let text = tables[0].to_string();
        assert_eq!(tables[0].row_count(), 7);
        // The theta = 0 row essentially always violates on a grid (whole
        // graph joins in one phase, diameter >> 2k-2).
        let zero_row = text
            .lines()
            .find(|l| l.starts_with("| 0.000"))
            .expect("theta=0 row");
        assert!(
            zero_row.contains("1.000") || zero_row.contains("inf"),
            "theta=0 should violate: {zero_row}"
        );
    }
}

//! E1 — Theorem 1: strong `(2k−2, (cn)^{1/k}·ln(cn))` decomposition in
//! `k(cn)^{1/k}·ln(cn)` rounds with probability `≥ 1 − 3/c`.
//!
//! For every (family, n, k) cell we run many seeded trials of
//! [`netdecomp_core::basic`], verify each decomposition exhaustively, and
//! print the measured maxima next to the paper's bounds. "ok" counts trials
//! that satisfied *all* guarantees simultaneously within the phase budget —
//! the event whose probability the theorem bounds below by `1 − 3/c`.

use netdecomp_core::{basic, params::DecompositionParams, verify};

use crate::runner::par_trials;
use crate::stats::{fraction, summarize_usize};
use crate::table::{fmt_f, Table};
use crate::workloads::default_families;
use crate::Effort;

struct Cell {
    strong_diameter: Option<usize>,
    colors: usize,
    phases: usize,
    success: bool,
}

/// Runs the experiment.
#[must_use]
pub fn run(effort: Effort) -> Vec<Table> {
    let sizes = effort.sizes(&[256], &[256, 1024, 4096]).to_vec();
    let trials = effort.trials(8, 30);
    let c = 4.0;

    let mut table = Table::new(
        "E1: Theorem 1 — basic algorithm",
        &[
            "family",
            "n",
            "k",
            "D bound",
            "D max",
            "chi bound",
            "chi max",
            "phase budget",
            "phases max",
            "succ bound",
            "succ",
        ],
    );
    table.set_caption(format!(
        "strong (2k-2, (cn)^(1/k) ln(cn)) decomposition; success prob >= 1 - 3/c, c = {c}; {trials} trials/cell"
    ));

    for family in default_families() {
        for &n in &sizes {
            let ks = pick_ks(n);
            for k in ks {
                let params = DecompositionParams::new(k, c).expect("valid params");
                let cells: Vec<Cell> = par_trials(trials, |seed| {
                    let g = family.build(n, seed);
                    let outcome = basic::decompose(&g, &params, seed).expect("run succeeds");
                    let report = verify::verify(&g, outcome.decomposition()).expect("same graph");
                    let success = outcome.exhausted_within_budget()
                        && report.is_valid_strong(params.diameter_bound());
                    Cell {
                        strong_diameter: report.max_strong_diameter,
                        colors: report.color_count,
                        phases: outcome.phases_used(),
                        success,
                    }
                });
                let n_eff = family.build(n, 0).vertex_count();
                let diam_max = cells
                    .iter()
                    .map(|c| c.strong_diameter)
                    .collect::<Option<Vec<_>>>()
                    .map(|v| v.into_iter().max().unwrap_or(0));
                let colors = summarize_usize(&cells.iter().map(|c| c.colors).collect::<Vec<_>>());
                let phases = summarize_usize(&cells.iter().map(|c| c.phases).collect::<Vec<_>>());
                let succ = fraction(&cells.iter().map(|c| c.success).collect::<Vec<_>>());
                table.push_row(vec![
                    family.label(),
                    n_eff.to_string(),
                    k.to_string(),
                    params.diameter_bound().to_string(),
                    crate::table::fmt_diameter(diam_max),
                    params.color_bound(n_eff).to_string(),
                    format!("{}", colors.max as usize),
                    params.phase_budget(n_eff).to_string(),
                    format!("{}", phases.max as usize),
                    fmt_f(1.0 - params.failure_probability()),
                    fmt_f(succ),
                ]);
            }
        }
    }
    vec![table]
}

fn pick_ks(n: usize) -> Vec<usize> {
    let ln_n = (n as f64).ln().ceil() as usize;
    let mut ks = vec![2, 3, 5];
    if !ks.contains(&ln_n) {
        ks.push(ln_n);
    }
    ks.retain(|&k| k <= ln_n.max(2));
    ks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_rows() {
        let tables = run(Effort::Quick);
        assert_eq!(tables.len(), 1);
        assert!(tables[0].row_count() >= 4);
        let text = tables[0].to_string();
        assert!(text.contains("E1"));
    }

    #[test]
    fn k_grid_respects_ln_n() {
        assert!(pick_ks(256).contains(&2));
        assert!(pick_ks(256).iter().all(|&k| k <= 6));
    }
}

//! E5 — the CONGEST claim (§2, last paragraph): forwarding only the top two
//! entries keeps every message `O(1)` words without changing any clustering
//! decision.
//!
//! We execute the distributed protocol twice per seed — once with top-two
//! pruning, once with full (LOCAL-style) forwarding — assert the outcomes
//! are identical, and compare the communication bills. `max edge B/rd` is
//! the largest number of payload bytes crossing one directed edge in one
//! round: bounded by 28 (two 14-byte entries) under pruning, unbounded in
//! principle under full forwarding.

use netdecomp_core::distributed::{decompose_distributed, DistributedConfig, Forwarding};
use netdecomp_core::params::DecompositionParams;

use crate::runner::par_trials;
use crate::stats::summarize_usize;
use crate::table::Table;
use crate::workloads::Family;
use crate::Effort;

struct Cell {
    msgs_top: usize,
    msgs_full: usize,
    bytes_top: usize,
    max_edge_top: usize,
    max_edge_full: usize,
    rounds: usize,
    identical: bool,
}

/// Runs the experiment.
#[must_use]
pub fn run(effort: Effort) -> Vec<Table> {
    let sizes = effort.sizes(&[128], &[128, 256, 512]).to_vec();
    let trials = effort.trials(4, 12);
    let families = [Family::Gnp { avg_degree: 6.0 }, Family::Grid];

    let mut table = Table::new(
        "E5: CONGEST accounting — top-two pruning vs full forwarding",
        &[
            "family",
            "n",
            "k",
            "msgs (top2)",
            "msgs (full)",
            "ratio",
            "max edge B/rd (top2)",
            "max edge B/rd (full)",
            "rounds",
            "identical",
        ],
    );
    table.set_caption(format!(
        "message = (origin u32, r f64, dist u16) = 14 bytes; top-two cap is 28 B/edge/round; {trials} trials/cell; 'identical' = decompositions bit-equal across modes"
    ));

    for family in families {
        for &n in &sizes {
            // Large k (the headline regime) makes radii big enough that
            // broadcasts overlap heavily and pruning actually bites.
            let k = ((n as f64).ln().ceil() as usize).max(5);
            let params = DecompositionParams::new(k, 4.0).expect("valid");
            let cells: Vec<Cell> = par_trials(trials, |seed| {
                let g = family.build(n, seed);
                let top = decompose_distributed(
                    &g,
                    &params,
                    seed,
                    &DistributedConfig {
                        forwarding: Forwarding::TopTwo,
                        ..DistributedConfig::default()
                    },
                )
                .expect("top-two run");
                let full = decompose_distributed(
                    &g,
                    &params,
                    seed,
                    &DistributedConfig {
                        forwarding: Forwarding::Full,
                        ..DistributedConfig::default()
                    },
                )
                .expect("full run");
                Cell {
                    msgs_top: top.comm.total_messages,
                    msgs_full: full.comm.total_messages,
                    bytes_top: top.comm.total_bytes,
                    max_edge_top: top.comm.max_edge_bytes,
                    max_edge_full: full.comm.max_edge_bytes,
                    rounds: top.comm.rounds,
                    identical: top.outcome.decomposition() == full.outcome.decomposition(),
                }
            });
            let n_eff = family.build(n, 0).vertex_count();
            let msgs_top = summarize_usize(&cells.iter().map(|c| c.msgs_top).collect::<Vec<_>>());
            let msgs_full = summarize_usize(&cells.iter().map(|c| c.msgs_full).collect::<Vec<_>>());
            let edge_top =
                summarize_usize(&cells.iter().map(|c| c.max_edge_top).collect::<Vec<_>>());
            let edge_full =
                summarize_usize(&cells.iter().map(|c| c.max_edge_full).collect::<Vec<_>>());
            let rounds = summarize_usize(&cells.iter().map(|c| c.rounds).collect::<Vec<_>>());
            let identical = cells.iter().all(|c| c.identical);
            let _ = summarize_usize(&cells.iter().map(|c| c.bytes_top).collect::<Vec<_>>());
            table.push_row(vec![
                family.label(),
                n_eff.to_string(),
                k.to_string(),
                format!("{:.0}", msgs_top.mean),
                format!("{:.0}", msgs_full.mean),
                format!("{:.2}", msgs_full.mean / msgs_top.mean.max(1.0)),
                format!("{}", edge_top.max as usize),
                format!("{}", edge_full.max as usize),
                format!("{:.0}", rounds.mean),
                identical.to_string(),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_rows_and_identical_outcomes() {
        let tables = run(Effort::Quick);
        assert_eq!(tables.len(), 1);
        let text = tables[0].to_string();
        assert!(text.contains("true"), "modes must agree: {text}");
        assert!(!text.contains("false"));
    }
}

//! E14 (figure) — the headline scaling: strong `(O(log n), O(log n))`
//! decompositions in `O(log² n)` rounds.
//!
//! Sweeping `n` with `k = ⌈ln n⌉`, `c = 4`: measured diameter and colors
//! should track `log n`, and rounds (`k` per phase × phases used) should
//! track `log² n`. The constant columns (`x / ln n`, `x / ln² n`) flatten
//! out if the asymptotics are right — that is the "shape" this figure
//! checks.

use netdecomp_core::{basic, params::DecompositionParams, verify};

use crate::runner::par_trials;
use crate::stats::summarize_usize;
use crate::table::{fmt_f, Table};
use crate::workloads::Family;
use crate::Effort;

/// Runs the experiment.
#[must_use]
pub fn run(effort: Effort) -> Vec<Table> {
    let sizes = effort.sizes(&[128, 256, 512], &[128, 256, 512, 1024, 2048, 4096, 8192]);
    let trials = effort.trials(6, 20);
    let family = Family::Gnp { avg_degree: 6.0 };

    let mut table = Table::new(
        "E14 (figure): headline scaling at k = ceil(ln n)",
        &[
            "n",
            "k",
            "D max",
            "D / ln n",
            "chi max",
            "chi / ln n",
            "rounds max",
            "rounds / ln^2 n",
        ],
    );
    table.set_caption(format!(
        "family {}, c = 4, {trials} trials; rounds = k x phases used; the ratio columns should flatten as n grows (O(log n) diameter/colors, O(log^2 n) rounds)",
        family.label()
    ));

    for &n in sizes {
        let params = DecompositionParams::for_graph_size(n);
        let k = params.k();
        let results: Vec<(usize, usize, usize)> = par_trials(trials, |seed| {
            let g = family.build(n, seed);
            let o = basic::decompose(&g, &params, seed).expect("run");
            let r = verify::verify(&g, o.decomposition()).expect("verify");
            (
                r.max_strong_diameter.unwrap_or(usize::MAX),
                r.color_count,
                k * o.phases_used(),
            )
        });
        let ln_n = (n as f64).ln();
        let diam = summarize_usize(&results.iter().map(|r| r.0).collect::<Vec<_>>());
        let chi = summarize_usize(&results.iter().map(|r| r.1).collect::<Vec<_>>());
        let rounds = summarize_usize(&results.iter().map(|r| r.2).collect::<Vec<_>>());
        table.push_row(vec![
            n.to_string(),
            k.to_string(),
            format!("{}", diam.max as usize),
            fmt_f(diam.max / ln_n),
            format!("{}", chi.max as usize),
            fmt_f(chi.max / ln_n),
            format!("{}", rounds.max as usize),
            fmt_f(rounds.max / (ln_n * ln_n)),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_rows() {
        let tables = run(Effort::Quick);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].row_count(), 3);
    }
}

//! E2 — Theorem 2: the staged algorithm's improved color bound
//! `4k(cn)^{1/k}` (vs. Theorem 1's `(cn)^{1/k}·ln(cn)`), success
//! probability `≥ 1 − 5/c`.
//!
//! Each cell reports both algorithms on the same graphs and seeds, making
//! the color improvement directly visible.

use netdecomp_core::{basic, params, staged, verify};

use crate::runner::par_trials;
use crate::stats::{fraction, summarize_usize};
use crate::table::{fmt_f, Table};
use crate::workloads::default_families;
use crate::Effort;

struct Cell {
    staged_colors: usize,
    basic_colors: usize,
    strong_diameter: Option<usize>,
    success: bool,
}

/// Runs the experiment.
#[must_use]
pub fn run(effort: Effort) -> Vec<Table> {
    let sizes = effort.sizes(&[256], &[256, 1024, 4096]).to_vec();
    let trials = effort.trials(8, 30);
    let c = 6.0;

    let mut table = Table::new(
        "E2: Theorem 2 — staged algorithm (improved colors)",
        &[
            "family",
            "n",
            "k",
            "D bound",
            "D max",
            "chi bound (T2)",
            "chi max (T2)",
            "chi mean (T1)",
            "succ bound",
            "succ",
        ],
    );
    table.set_caption(format!(
        "strong (2k-2, 4k(cn)^(1/k)); success prob >= 1 - 5/c, c = {c}; Theorem 1 colors on the same seeds for contrast; {trials} trials/cell"
    ));

    for family in default_families() {
        for &n in &sizes {
            for k in [3usize, 5] {
                let sp = params::StagedParams::new(k, c).expect("valid params");
                let bp = params::DecompositionParams::new(k, c).expect("valid params");
                let cells: Vec<Cell> = par_trials(trials, |seed| {
                    let g = family.build(n, seed);
                    let s = staged::decompose(&g, &sp, seed).expect("staged run");
                    let b = basic::decompose(&g, &bp, seed).expect("basic run");
                    let report = verify::verify(&g, s.decomposition()).expect("same graph");
                    let success =
                        s.exhausted_within_budget() && report.is_valid_strong(sp.diameter_bound());
                    Cell {
                        staged_colors: report.color_count,
                        basic_colors: b.decomposition().block_count(),
                        strong_diameter: report.max_strong_diameter,
                        success,
                    }
                });
                let n_eff = family.build(n, 0).vertex_count();
                let diam_max = cells
                    .iter()
                    .map(|c| c.strong_diameter)
                    .collect::<Option<Vec<_>>>()
                    .map(|v| v.into_iter().max().unwrap_or(0));
                let staged_colors =
                    summarize_usize(&cells.iter().map(|c| c.staged_colors).collect::<Vec<_>>());
                let basic_colors =
                    summarize_usize(&cells.iter().map(|c| c.basic_colors).collect::<Vec<_>>());
                let succ = fraction(&cells.iter().map(|c| c.success).collect::<Vec<_>>());
                table.push_row(vec![
                    family.label(),
                    n_eff.to_string(),
                    k.to_string(),
                    sp.diameter_bound().to_string(),
                    crate::table::fmt_diameter(diam_max),
                    sp.color_bound(n_eff).to_string(),
                    format!("{}", staged_colors.max as usize),
                    fmt_f(basic_colors.mean),
                    fmt_f(1.0 - sp.failure_probability()),
                    fmt_f(succ),
                ]);
            }
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_rows() {
        let tables = run(Effort::Quick);
        assert_eq!(tables.len(), 1);
        assert!(tables[0].row_count() >= 4);
    }
}

//! E9 — Lemma 1: the probability that *any* vertex ever samples
//! `r_v ≥ k + 1` (event `E_v`, forcing broadcast truncation) is at most
//! `2/c` for Theorem 1's schedule and `4/c` for Theorem 2's.
//!
//! The event log of every run counts truncations exactly, so the measured
//! column is the fraction of runs with at least one event.

use netdecomp_core::{basic, params, staged};

use crate::runner::par_trials;
use crate::stats::fraction;
use crate::table::{fmt_f, Table};
use crate::workloads::Family;
use crate::Effort;

/// Runs the experiment.
#[must_use]
pub fn run(effort: Effort) -> Vec<Table> {
    let sizes = effort.sizes(&[256], &[256, 1024]).to_vec();
    let trials = effort.trials(20, 100);
    let family = Family::Gnp { avg_degree: 6.0 };

    let mut table = Table::new(
        "E9: Lemma 1 — frequency of truncation events E_v",
        &[
            "algorithm",
            "n",
            "k",
            "c",
            "bound",
            "P[any E_v] measured",
            "mean #events",
        ],
    );
    table.set_caption(format!(
        "E_v: some vertex samples r >= k+1 in some phase; {trials} trials/cell on {}",
        family.label()
    ));

    for &n in &sizes {
        for &(k, c) in &[(2usize, 4.0f64), (3, 4.0), (3, 16.0), (5, 4.0)] {
            let p = params::DecompositionParams::new(k, c).expect("valid");
            let results: Vec<(bool, usize)> = par_trials(trials, |seed| {
                let g = family.build(n, seed);
                let outcome = basic::decompose(&g, &p, seed).expect("run");
                (
                    !outcome.events().clean(),
                    outcome.events().truncation_events,
                )
            });
            let any = fraction(&results.iter().map(|r| r.0).collect::<Vec<_>>());
            let mean_events =
                results.iter().map(|r| r.1).sum::<usize>() as f64 / results.len() as f64;
            table.push_row(vec![
                "T1 basic".into(),
                n.to_string(),
                k.to_string(),
                format!("{c}"),
                fmt_f(2.0 / c),
                fmt_f(any),
                fmt_f(mean_events),
            ]);
        }
        // Theorem 2's bound (4/c).
        let k = 3usize;
        let c = 8.0f64;
        let sp = params::StagedParams::new(k, c).expect("valid");
        let results: Vec<(bool, usize)> = par_trials(trials, |seed| {
            let g = family.build(n, seed);
            let outcome = staged::decompose(&g, &sp, seed).expect("run");
            (
                !outcome.events().clean(),
                outcome.events().truncation_events,
            )
        });
        let any = fraction(&results.iter().map(|r| r.0).collect::<Vec<_>>());
        let mean_events = results.iter().map(|r| r.1).sum::<usize>() as f64 / results.len() as f64;
        table.push_row(vec![
            "T2 staged".into(),
            n.to_string(),
            k.to_string(),
            format!("{c}"),
            fmt_f(4.0 / c),
            fmt_f(any),
            fmt_f(mean_events),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_rows() {
        let tables = run(Effort::Quick);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].row_count(), 5);
    }
}

//! E12 — the (diameter, colors) tradeoff frontier across all three
//! theorems (the paper's parameter tradeoff, plotted as a table).
//!
//! For a fixed graph, sweep `k` through Theorem 1/2 and `λ` through
//! Theorem 3, plus the Linial–Saks weak points and the degenerate anchors,
//! and print each point's measured (strong D, weak D, χ). Reading down the
//! table traces the frontier from many-colors/zero-diameter to
//! one-color/full-diameter.

use netdecomp_baselines::{ball_carving, linial_saks, trivial};
use netdecomp_core::{basic, high_radius, params, staged, verify};

use crate::runner::par_trials;
use crate::table::{fmt_diameter, Table};
use crate::workloads::Family;
use crate::Effort;

/// Runs the experiment.
#[must_use]
pub fn run(effort: Effort) -> Vec<Table> {
    let n = match effort {
        Effort::Quick => 256,
        Effort::Full => 1024,
    };
    let trials = effort.trials(5, 15);
    let family = Family::Gnp { avg_degree: 6.0 };

    let mut table = Table::new(
        "E12: the (diameter, colors) tradeoff frontier",
        &["point", "param", "strong D", "weak D", "chi", "connected"],
    );
    table.set_caption(format!(
        "graph: {} with n = {n}; maxima over {trials} trials; EN = this paper, LS = Linial-Saks, MPX-style anchors via trivial/ball-carving",
        family.label()
    ));

    // Degenerate anchors.
    {
        let g = family.build(n, 0);
        let d = trivial::singletons(&g);
        let r = verify::verify(&g, &d).expect("verify");
        table.push_row(vec![
            "singletons".into(),
            "-".into(),
            fmt_diameter(r.max_strong_diameter),
            fmt_diameter(r.max_weak_diameter),
            r.color_count.to_string(),
            r.clusters_connected.to_string(),
        ]);
        let d = trivial::whole_components(&g);
        let r = verify::verify(&g, &d).expect("verify");
        table.push_row(vec![
            "whole-graph".into(),
            "-".into(),
            fmt_diameter(r.max_strong_diameter),
            fmt_diameter(r.max_weak_diameter),
            r.color_count.to_string(),
            r.clusters_connected.to_string(),
        ]);
        let carve = ball_carving::carve(&g, 0.2).expect("carve");
        let d = netdecomp_baselines::decomposition_via_greedy_coloring(
            &g,
            carve.partition,
            carve.centers,
        );
        let r = verify::verify(&g, &d).expect("verify");
        table.push_row(vec![
            "ball-carving".into(),
            "eps=0.2".into(),
            fmt_diameter(r.max_strong_diameter),
            fmt_diameter(r.max_weak_diameter),
            r.color_count.to_string(),
            r.clusters_connected.to_string(),
        ]);
    }

    let agg = |points: Vec<(Option<usize>, Option<usize>, usize, bool)>| {
        let strong = points
            .iter()
            .map(|p| p.0)
            .collect::<Option<Vec<_>>>()
            .map(|v| v.into_iter().max().unwrap_or(0));
        let weak = points
            .iter()
            .map(|p| p.1)
            .collect::<Option<Vec<_>>>()
            .map(|v| v.into_iter().max().unwrap_or(0));
        let chi = points.iter().map(|p| p.2).max().unwrap_or(0);
        let connected = points.iter().all(|p| p.3);
        (strong, weak, chi, connected)
    };

    // Theorem 1 and Theorem 2 sweeps over k.
    let ln_n = (n as f64).ln().ceil() as usize;
    for k in [2usize, 3, 5, ln_n] {
        let p = params::DecompositionParams::new(k, 4.0).expect("valid");
        let points = par_trials(trials, |seed| {
            let g = family.build(n, seed);
            let o = basic::decompose(&g, &p, seed).expect("run");
            let r = verify::verify(&g, o.decomposition()).expect("verify");
            (
                r.max_strong_diameter,
                r.max_weak_diameter,
                r.color_count,
                r.clusters_connected,
            )
        });
        let (s, w, chi, conn) = agg(points);
        table.push_row(vec![
            "EN-T1".into(),
            format!("k={k}"),
            fmt_diameter(s),
            fmt_diameter(w),
            chi.to_string(),
            conn.to_string(),
        ]);

        let sp = params::StagedParams::new(k, 6.0).expect("valid");
        let points = par_trials(trials, |seed| {
            let g = family.build(n, seed);
            let o = staged::decompose(&g, &sp, seed).expect("run");
            let r = verify::verify(&g, o.decomposition()).expect("verify");
            (
                r.max_strong_diameter,
                r.max_weak_diameter,
                r.color_count,
                r.clusters_connected,
            )
        });
        let (s, w, chi, conn) = agg(points);
        table.push_row(vec![
            "EN-T2".into(),
            format!("k={k}"),
            fmt_diameter(s),
            fmt_diameter(w),
            chi.to_string(),
            conn.to_string(),
        ]);
    }

    // Theorem 3 sweep over lambda.
    for lambda in [2usize, 3, 5] {
        let p = params::HighRadiusParams::new(lambda, 4.0).expect("valid");
        let points = par_trials(trials, |seed| {
            let g = family.build(n, seed);
            let o = high_radius::decompose(&g, &p, seed).expect("run");
            let r = verify::verify(&g, o.decomposition()).expect("verify");
            (
                r.max_strong_diameter,
                r.max_weak_diameter,
                r.color_count,
                r.clusters_connected,
            )
        });
        let (s, w, chi, conn) = agg(points);
        table.push_row(vec![
            "EN-T3".into(),
            format!("lambda={lambda}"),
            fmt_diameter(s),
            fmt_diameter(w),
            chi.to_string(),
            conn.to_string(),
        ]);
    }

    // Linial-Saks weak points.
    for k in [3usize, 5, ln_n] {
        let p = linial_saks::LinialSaksParams::new(k, 4.0).expect("valid");
        let points = par_trials(trials, |seed| {
            let g = family.build(n, seed);
            let o = linial_saks::decompose(&g, &p, seed).expect("run");
            let r = verify::verify(&g, &o.decomposition).expect("verify");
            (
                r.max_strong_diameter,
                r.max_weak_diameter,
                r.color_count,
                r.clusters_connected,
            )
        });
        let (s, w, chi, conn) = agg(points);
        table.push_row(vec![
            "LS93".into(),
            format!("k={k}"),
            fmt_diameter(s),
            fmt_diameter(w),
            chi.to_string(),
            conn.to_string(),
        ]);
    }

    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_covers_all_points() {
        let tables = run(Effort::Quick);
        assert_eq!(tables.len(), 1);
        // 3 anchors + 4 k-values * 2 + 3 lambdas + 3 LS rows.
        assert_eq!(tables[0].row_count(), 3 + 8 + 3 + 3);
    }
}

//! E3 — Theorem 3: the high-radius regime — strong
//! `(2(cn)^{1/λ}·ln(cn), λ)` decomposition in `λ(cn)^{1/λ}·ln(cn)` rounds.
//!
//! Here the number of colors is pinned to `λ` and the diameter bound blows
//! up instead; the high-diameter families (path, cycle, grid, caveman) are
//! the interesting workloads.

use netdecomp_core::{high_radius, params::HighRadiusParams, verify};

use crate::runner::par_trials;
use crate::stats::{fraction, summarize_usize};
use crate::table::{fmt_f, Table};
use crate::workloads::Family;
use crate::Effort;

struct Cell {
    strong_diameter: Option<usize>,
    colors: usize,
    success: bool,
}

/// Runs the experiment.
#[must_use]
pub fn run(effort: Effort) -> Vec<Table> {
    let sizes = effort.sizes(&[256], &[256, 1024]).to_vec();
    let trials = effort.trials(8, 30);
    let c = 4.0;
    let families = [
        Family::Path,
        Family::Cycle,
        Family::Grid,
        Family::Caveman { cave_size: 8 },
    ];

    let mut table = Table::new(
        "E3: Theorem 3 — high-radius regime",
        &[
            "family",
            "n",
            "lambda",
            "D bound",
            "D max",
            "chi bound",
            "chi max",
            "succ bound",
            "succ",
        ],
    );
    table.set_caption(format!(
        "strong (2(cn)^(1/lambda) ln(cn), lambda); success prob >= 1 - 3/c, c = {c}; {trials} trials/cell"
    ));

    for family in families {
        for &n in &sizes {
            for lambda in [2usize, 3, 5] {
                let params = HighRadiusParams::new(lambda, c).expect("valid params");
                let cells: Vec<Cell> = par_trials(trials, |seed| {
                    let g = family.build(n, seed);
                    let outcome = high_radius::decompose(&g, &params, seed).expect("run succeeds");
                    let report = verify::verify(&g, outcome.decomposition()).expect("same graph");
                    let nv = g.vertex_count();
                    let success = outcome.exhausted_within_budget()
                        && report.is_valid_strong(params.diameter_bound(nv));
                    Cell {
                        strong_diameter: report.max_strong_diameter,
                        colors: report.color_count,
                        success,
                    }
                });
                let n_eff = family.build(n, 0).vertex_count();
                let diam_max = cells
                    .iter()
                    .map(|c| c.strong_diameter)
                    .collect::<Option<Vec<_>>>()
                    .map(|v| v.into_iter().max().unwrap_or(0));
                let colors = summarize_usize(&cells.iter().map(|c| c.colors).collect::<Vec<_>>());
                let succ = fraction(&cells.iter().map(|c| c.success).collect::<Vec<_>>());
                table.push_row(vec![
                    family.label(),
                    n_eff.to_string(),
                    lambda.to_string(),
                    params.diameter_bound(n_eff).to_string(),
                    crate::table::fmt_diameter(diam_max),
                    lambda.to_string(),
                    format!("{}", colors.max as usize),
                    fmt_f(1.0 - params.failure_probability()),
                    fmt_f(succ),
                ]);
            }
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_rows() {
        let tables = run(Effort::Quick);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].row_count(), 4 * 3);
    }
}

//! E6 — Lemma 5 (MPX13, sharpened): for arbitrary shift values
//! `d_1 ≤ … ≤ d_q` and i.i.d. `δ_j ~ EXP(β)`, the top two values of
//! `δ_j − d_j` are within 1 of each other with probability at most
//! `1 − e^{−β}`.
//!
//! This is the engine of the whole paper (it lower-bounds the per-phase
//! join probability). We Monte-Carlo the event over several shift-vector
//! shapes and rates.

use netdecomp_core::shift::top_two_within_margin;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::runner::par_trials;
use crate::table::{fmt_f, Table};
use crate::Effort;

/// Shapes of the shift vector `d`.
fn shapes(q: usize) -> Vec<(&'static str, Vec<f64>)> {
    vec![
        ("all-zero", vec![0.0; q]),
        ("linear", (0..q).map(|i| i as f64 * 0.25).collect()),
        (
            "two-groups",
            (0..q).map(|i| if i % 2 == 0 { 0.0 } else { 3.0 }).collect(),
        ),
        (
            "one-near",
            (0..q).map(|i| if i == 0 { 0.0 } else { 5.0 }).collect(),
        ),
    ]
}

/// Runs the experiment.
#[must_use]
pub fn run(effort: Effort) -> Vec<Table> {
    let trials = effort.trials(20_000, 200_000);
    let mut table = Table::new(
        "E6: Lemma 5 — top-two shifted exponentials within margin 1",
        &["shape", "q", "beta", "bound 1-e^-beta", "measured", "holds"],
    );
    table.set_caption(format!(
        "probability the two largest delta_j - d_j are within 1; {trials} Monte-Carlo samples/cell"
    ));

    for &q in &[2usize, 8, 64] {
        for (name, d) in shapes(q) {
            for &beta in &[0.1f64, 0.4, 1.0] {
                let threads = 8usize;
                let per_thread = trials / threads;
                let hits: usize = par_trials(threads, |seed| {
                    let mut rng = StdRng::seed_from_u64(seed ^ 0xE6);
                    (0..per_thread)
                        .filter(|_| top_two_within_margin(&d, beta, &mut rng).expect("valid beta"))
                        .count()
                })
                .into_iter()
                .sum();
                let measured = hits as f64 / (per_thread * threads) as f64;
                let bound = 1.0 - (-beta).exp();
                let sigma = (bound * (1.0 - bound) / (per_thread * threads) as f64)
                    .sqrt()
                    .max(1e-9);
                table.push_row(vec![
                    name.to_string(),
                    q.to_string(),
                    fmt_f(beta),
                    fmt_f(bound),
                    fmt_f(measured),
                    (measured <= bound + 4.0 * sigma).to_string(),
                ]);
            }
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_holds_in_quick_mode() {
        let tables = run(Effort::Quick);
        let text = tables[0].to_string();
        assert!(
            !text.contains("| false |"),
            "Lemma 5 bound violated somewhere:\n{text}"
        );
    }
}

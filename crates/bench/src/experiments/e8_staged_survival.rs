//! E8 — Claim 8: under the staged schedule, the probability a vertex is
//! still alive at the start of stage `i` is at most `e^{−2i}`.
//!
//! The trace records β per phase, which identifies each phase's stage, so
//! we can measure survival at each stage boundary.

use netdecomp_core::{params::StagedParams, staged};

use crate::runner::par_trials;
use crate::table::{fmt_f, Table};
use crate::workloads::Family;
use crate::Effort;

/// Runs the experiment.
#[must_use]
pub fn run(effort: Effort) -> Vec<Table> {
    let n = 512usize;
    let trials = effort.trials(10, 40);
    let c = 6.0;
    let k = 3usize;
    let families = [Family::Gnp { avg_degree: 6.0 }, Family::Grid];

    let mut table = Table::new(
        "E8: Claim 8 — staged survival at stage boundaries",
        &[
            "family",
            "stage i",
            "first phase",
            "bound e^-2i",
            "measured mean",
        ],
    );
    table.set_caption(format!(
        "n = {n}, k = {k}, c = {c}, {trials} trials; measured = mean fraction alive at the first phase of stage i"
    ));

    for family in families {
        let params = StagedParams::new(k, c).expect("valid");
        let n_eff = family.build(n, 0).vertex_count();
        // First global phase index of each stage.
        let mut stage_starts = Vec::new();
        let mut cursor = 0usize;
        for i in 0..params.stage_count(n_eff) {
            stage_starts.push((i, cursor));
            cursor += params.stage_phases(n_eff, i);
        }
        let survival: Vec<Vec<f64>> = par_trials(trials, |seed| {
            let g = family.build(n, seed);
            let outcome = staged::decompose(&g, &params, seed).expect("run");
            let nv = g.vertex_count() as f64;
            stage_starts
                .iter()
                .map(|&(_, phase)| {
                    outcome
                        .trace()
                        .get(phase)
                        .map_or(0.0, |t| t.alive_before as f64 / nv)
                })
                .collect()
        });
        for (idx, &(stage, phase)) in stage_starts.iter().enumerate() {
            // Stop printing once the bound is negligible.
            let bound = (-2.0 * stage as f64).exp();
            if bound < 1e-4 {
                break;
            }
            let mean = survival.iter().map(|s| s[idx]).sum::<f64>() / survival.len() as f64;
            table.push_row(vec![
                family.label(),
                stage.to_string(),
                phase.to_string(),
                fmt_f(bound),
                fmt_f(mean),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_rows() {
        let tables = run(Effort::Quick);
        assert_eq!(tables.len(), 1);
        assert!(tables[0].row_count() >= 6);
    }
}

//! E7 — Claim 6 / Corollary 7: survival decay.
//!
//! Claim 6: `Pr[y ∈ G_{t+1}] ≤ (1 − (cn)^{−1/k})^t` — the fraction of
//! vertices still alive decays geometrically with the phase index, so
//! `λ = (cn)^{1/k}·ln(cn)` phases empty the graph with probability
//! `≥ 1 − 1/c`. This is the paper's only "figure-shaped" statement: a
//! series over `t`. We print the measured survival fraction against the
//! bound at sampled phases.

use netdecomp_core::{basic, params::DecompositionParams};

use crate::runner::par_trials;
use crate::stats::fraction;
use crate::table::{fmt_f, Table};
use crate::workloads::Family;
use crate::Effort;

/// Runs the experiment.
#[must_use]
pub fn run(effort: Effort) -> Vec<Table> {
    let n = 512usize;
    let trials = effort.trials(10, 40);
    let c = 4.0;
    let k = 3usize;
    let families = [
        Family::Gnp { avg_degree: 6.0 },
        Family::Path,
        Family::Ba { attach: 3 },
    ];
    let mut tables = Vec::new();

    let mut curve = Table::new(
        "E7a: Claim 6 — survival fraction by phase (figure series)",
        &[
            "family",
            "phase t",
            "bound (1-(cn)^-1/k)^t",
            "measured mean",
        ],
    );
    curve.set_caption(format!(
        "n = {n}, k = {k}, c = {c}, {trials} trials; measured = mean over trials of |G_t|/n"
    ));
    let mut budget_table = Table::new(
        "E7b: Corollary 7 — exhaustion within the phase budget",
        &[
            "family",
            "phase budget",
            "phases max",
            "P[exhausted in budget]",
            "bound",
        ],
    );
    budget_table.set_caption("the graph empties within lambda phases w.p. >= 1 - 1/c".to_string());

    for family in families {
        let params = DecompositionParams::new(k, c).expect("valid");
        // survivors[t] per trial; phases used per trial.
        let results: Vec<(Vec<f64>, usize, bool)> = par_trials(trials, |seed| {
            let g = family.build(n, seed);
            let outcome = basic::decompose(&g, &params, seed).expect("run");
            let nv = g.vertex_count() as f64;
            let mut fracs = Vec::new();
            for t in outcome.trace() {
                fracs.push(t.alive_before as f64 / nv);
            }
            (
                fracs,
                outcome.phases_used(),
                outcome.exhausted_within_budget(),
            )
        });
        let n_eff = family.build(n, 0).vertex_count();
        let q = 1.0 - (c * n_eff as f64).powf(-1.0 / k as f64);
        let budget = params.phase_budget(n_eff);
        // Sample the curve at a handful of phases.
        let max_phases = results.iter().map(|(f, _, _)| f.len()).max().unwrap_or(0);
        let sample_points: Vec<usize> = [0usize, 1, 2, 4, 8, 16, 32, 64, 128, 256]
            .iter()
            .copied()
            .filter(|&t| t < max_phases)
            .collect();
        for &t in &sample_points {
            let measured: Vec<f64> = results
                .iter()
                .map(|(f, _, _)| f.get(t).copied().unwrap_or(0.0))
                .collect();
            let mean = measured.iter().sum::<f64>() / measured.len() as f64;
            curve.push_row(vec![
                family.label(),
                t.to_string(),
                fmt_f(q.powi(t as i32)),
                fmt_f(mean),
            ]);
        }
        let phases_max = results.iter().map(|(_, p, _)| *p).max().unwrap_or(0);
        let in_budget = fraction(&results.iter().map(|(_, _, b)| *b).collect::<Vec<_>>());
        budget_table.push_row(vec![
            family.label(),
            budget.to_string(),
            phases_max.to_string(),
            fmt_f(in_budget),
            fmt_f(1.0 - 1.0 / c),
        ]);
    }
    tables.push(curve);
    tables.push(budget_table);
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_two_tables() {
        let tables = run(Effort::Quick);
        assert_eq!(tables.len(), 2);
        assert!(tables[0].row_count() >= 6);
        assert_eq!(tables[1].row_count(), 3);
    }
}

//! E10 — the MPX13 substrate: padded partitions from exponential shifts
//! have strong diameter `O(log n / β)` and cut at most an `O(β)` fraction
//! of edges.
//!
//! The paper adapts exactly this machinery, so reproducing its guarantees
//! validates the foundation. The reference column `4·ln(n)/β` makes the
//! `O(log n/β)` shape visible; the cut bound is `β` up to constants.

use netdecomp_baselines::mpx;

use crate::runner::par_trials;
use crate::stats::summarize;
use crate::table::{fmt_f, Table};
use crate::workloads::Family;
use crate::Effort;

/// Runs the experiment.
#[must_use]
pub fn run(effort: Effort) -> Vec<Table> {
    let n = 1024usize;
    let trials = effort.trials(6, 20);
    let families = [
        Family::Gnp { avg_degree: 6.0 },
        Family::Grid,
        Family::Ba { attach: 3 },
    ];

    let mut table = Table::new(
        "E10: MPX13 padded partition — diameter and cut fraction vs beta",
        &[
            "family",
            "beta",
            "max strong D",
            "ref 4 ln(n)/beta",
            "cut frac",
            "beta (bound shape)",
            "clusters",
        ],
    );
    table.set_caption(format!(
        "n ~ {n}, {trials} trials; diameters are maxima over trials, cut fractions are means"
    ));

    for family in families {
        for &beta in &[0.05f64, 0.1, 0.2, 0.4, 0.8] {
            let results: Vec<(usize, f64, usize)> = par_trials(trials, |seed| {
                let g = family.build(n, seed);
                let padded = mpx::padded_partition(&g, beta, seed).expect("valid beta");
                let report = mpx::report(&g, &padded);
                (
                    report
                        .max_strong_diameter
                        .expect("MPX clusters are connected"),
                    report.cut_fraction,
                    report.cluster_count,
                )
            });
            let n_eff = family.build(n, 0).vertex_count();
            let diam_max = results.iter().map(|r| r.0).max().unwrap_or(0);
            let cut = summarize(&results.iter().map(|r| r.1).collect::<Vec<_>>());
            let clusters = results.iter().map(|r| r.2).sum::<usize>() / results.len();
            table.push_row(vec![
                family.label(),
                fmt_f(beta),
                diam_max.to_string(),
                format!("{:.1}", 4.0 * (n_eff as f64).ln() / beta),
                fmt_f(cut.mean),
                fmt_f(beta),
                clusters.to_string(),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_rows() {
        let tables = run(Effort::Quick);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].row_count(), 3 * 5);
    }
}

//! One module per experiment; see the crate docs for the index.

pub mod e10_padded;
pub mod e11_applications;
pub mod e12_tradeoff;
pub mod e13_margin;
pub mod e14_scaling;
pub mod e1_theorem1;
pub mod e2_theorem2;
pub mod e3_high_radius;
pub mod e4_strong_vs_weak;
pub mod e5_congest;
pub mod e6_order_stats;
pub mod e7_survival;
pub mod e8_staged_survival;
pub mod e9_truncation;

use crate::table::Table;
use crate::Effort;

/// Experiment ids accepted by the `tables` binary.
pub const ALL: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14",
];

/// Runs one experiment by id.
///
/// # Panics
///
/// Panics on an unknown id (the binary validates first).
#[must_use]
pub fn run(id: &str, effort: Effort) -> Vec<Table> {
    match id {
        "e1" => e1_theorem1::run(effort),
        "e2" => e2_theorem2::run(effort),
        "e3" => e3_high_radius::run(effort),
        "e4" => e4_strong_vs_weak::run(effort),
        "e5" => e5_congest::run(effort),
        "e6" => e6_order_stats::run(effort),
        "e7" => e7_survival::run(effort),
        "e8" => e8_staged_survival::run(effort),
        "e9" => e9_truncation::run(effort),
        "e10" => e10_padded::run(effort),
        "e11" => e11_applications::run(effort),
        "e12" => e12_tradeoff::run(effort),
        "e13" => e13_margin::run(effort),
        "e14" => e14_scaling::run(effort),
        other => panic!("unknown experiment id {other}"),
    }
}

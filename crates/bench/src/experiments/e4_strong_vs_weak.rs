//! E4 — the headline: Elkin–Neiman strong `(O(log n), O(log n))` vs.
//! Linial–Saks weak `(O(log n), O(log n))` at `k = ⌈ln n⌉`.
//!
//! Both algorithms run on the same graphs at matched parameters. The
//! columns that matter:
//! - **strong D**: EN16 stays `≤ 2k − 2`; LS93 clusters can be
//!   *disconnected* (`inf`) — the open problem the paper closes.
//! - **weak D**: both stay `O(log n)`.
//! - **disc**: fraction of trials in which at least one LS93 cluster was
//!   disconnected in its induced subgraph.

use netdecomp_baselines::linial_saks::{self, LinialSaksParams};
use netdecomp_core::distributed::{decompose_distributed, DistributedConfig};
use netdecomp_core::{basic, params::DecompositionParams, verify};
use netdecomp_sim::CongestLimit;

use crate::runner::par_trials;
use crate::stats::{fraction, summarize_usize};
use crate::table::{fmt_diameter, fmt_f, Table};
use crate::workloads::Family;
use crate::Effort;

struct Cell {
    en_strong: Option<usize>,
    en_weak: Option<usize>,
    en_colors: usize,
    en_phases: usize,
    ls_strong: Option<usize>,
    ls_weak: Option<usize>,
    ls_colors: usize,
    ls_phases: usize,
    ls_disconnected: bool,
}

/// Runs the experiment.
#[must_use]
pub fn run(effort: Effort) -> Vec<Table> {
    let sizes = effort.sizes(&[256], &[256, 1024, 4096]).to_vec();
    let trials = effort.trials(8, 30);
    let families = [
        Family::Gnp { avg_degree: 6.0 },
        Family::Grid,
        Family::Caveman { cave_size: 8 },
        Family::Tree,
    ];

    let mut table = Table::new(
        "E4: strong (EN16) vs weak (LS93) decomposition at k = ln n",
        &[
            "family", "n", "k", "algo", "strong D", "weak D", "chi", "phases", "disc",
        ],
    );
    table.set_caption(format!(
        "same graphs, c = 4, {trials} trials; 'strong D'/'weak D' are maxima over trials; disc = fraction of trials with a disconnected cluster (strong diameter infinite)"
    ));

    for family in families {
        for &n in &sizes {
            let k = ((n as f64).ln().ceil() as usize).max(2);
            let en_params = DecompositionParams::new(k, 4.0).expect("valid");
            let ls_params = LinialSaksParams::new(k, 4.0).expect("valid");
            let cells: Vec<Cell> = par_trials(trials, |seed| {
                let g = family.build(n, seed);
                let en = basic::decompose(&g, &en_params, seed).expect("en run");
                let en_report = verify::verify(&g, en.decomposition()).expect("same graph");
                let ls = linial_saks::decompose(&g, &ls_params, seed).expect("ls run");
                let ls_report = verify::verify(&g, &ls.decomposition).expect("same graph");
                Cell {
                    en_strong: en_report.max_strong_diameter,
                    en_weak: en_report.max_weak_diameter,
                    en_colors: en_report.color_count,
                    en_phases: en.phases_used(),
                    ls_strong: ls_report.max_strong_diameter,
                    ls_weak: ls_report.max_weak_diameter,
                    ls_colors: ls_report.color_count,
                    ls_phases: ls.phases_used,
                    ls_disconnected: !ls_report.clusters_connected,
                }
            });
            let n_eff = family.build(n, 0).vertex_count();
            let max_opt = |xs: Vec<Option<usize>>| -> Option<usize> {
                xs.into_iter()
                    .collect::<Option<Vec<_>>>()
                    .map(|v| v.into_iter().max().unwrap_or(0))
            };
            let en_strong = max_opt(cells.iter().map(|c| c.en_strong).collect());
            let en_weak = max_opt(cells.iter().map(|c| c.en_weak).collect());
            let ls_strong = max_opt(cells.iter().map(|c| c.ls_strong).collect());
            let ls_weak = max_opt(cells.iter().map(|c| c.ls_weak).collect());
            let en_colors = summarize_usize(&cells.iter().map(|c| c.en_colors).collect::<Vec<_>>());
            let ls_colors = summarize_usize(&cells.iter().map(|c| c.ls_colors).collect::<Vec<_>>());
            let en_phases = summarize_usize(&cells.iter().map(|c| c.en_phases).collect::<Vec<_>>());
            let ls_phases = summarize_usize(&cells.iter().map(|c| c.ls_phases).collect::<Vec<_>>());
            let disc = fraction(&cells.iter().map(|c| c.ls_disconnected).collect::<Vec<_>>());
            table.push_row(vec![
                family.label(),
                n_eff.to_string(),
                k.to_string(),
                "EN16".into(),
                fmt_diameter(en_strong),
                fmt_diameter(en_weak),
                format!("{}", en_colors.max as usize),
                format!("{}", en_phases.max as usize),
                fmt_f(0.0),
            ]);
            table.push_row(vec![
                String::new(),
                String::new(),
                String::new(),
                "LS93".into(),
                fmt_diameter(ls_strong),
                fmt_diameter(ls_weak),
                format!("{}", ls_colors.max as usize),
                format!("{}", ls_phases.max as usize),
                fmt_f(disc),
            ]);
        }
    }

    // Second table: the measured communication bill of both message-passing
    // implementations on one graph.
    let mut comm_table = Table::new(
        "E4b: measured communication — EN16 (top-two) vs LS93 (label frontier)",
        &[
            "algo",
            "n",
            "k",
            "messages",
            "payload bytes",
            "max edge B/rd",
            "rounds",
        ],
    );
    comm_table.set_caption(
        "single seeded run per row on gnp(d~6); EN16 messages are 14 B, LS93 messages 8 B"
            .to_string(),
    );
    {
        let n = 256usize;
        let family = Family::Gnp { avg_degree: 6.0 };
        let g = family.build(n, 0);
        let k = ((n as f64).ln().ceil() as usize).max(2);
        let en_params = DecompositionParams::new(k, 4.0).expect("valid");
        let en = decompose_distributed(&g, &en_params, 0, &DistributedConfig::default())
            .expect("en run");
        comm_table.push_row(vec![
            "EN16".into(),
            n.to_string(),
            k.to_string(),
            en.comm.total_messages.to_string(),
            en.comm.total_bytes.to_string(),
            en.comm.max_edge_bytes.to_string(),
            en.comm.rounds.to_string(),
        ]);
        let ls_params = LinialSaksParams::new(k, 4.0).expect("valid");
        let (_, ls_comm) = linial_saks::decompose_distributed(
            &g,
            &ls_params,
            0,
            CongestLimit::Unlimited,
            netdecomp_sim::Engine::Sequential,
        )
        .expect("ls run");
        comm_table.push_row(vec![
            "LS93".into(),
            n.to_string(),
            k.to_string(),
            ls_comm.total_messages.to_string(),
            ls_comm.total_bytes.to_string(),
            ls_comm.max_edge_bytes.to_string(),
            ls_comm.rounds.to_string(),
        ]);
    }
    vec![table, comm_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_paired_rows() {
        let tables = run(Effort::Quick);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].row_count(), 4 * 2);
        assert_eq!(tables[1].row_count(), 2);
    }
}

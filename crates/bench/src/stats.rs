//! Summary statistics over trial outcomes.

/// Summary of a sample of `f64` observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Minimum (0 for an empty sample).
    pub min: f64,
    /// Maximum (0 for an empty sample).
    pub max: f64,
    /// Population standard deviation (0 for fewer than 2 observations).
    pub std: f64,
}

/// Summarizes a sample.
#[must_use]
pub fn summarize(xs: &[f64]) -> Summary {
    if xs.is_empty() {
        return Summary {
            count: 0,
            mean: 0.0,
            min: 0.0,
            max: 0.0,
            std: 0.0,
        };
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    Summary {
        count: xs.len(),
        mean,
        min: xs.iter().copied().fold(f64::INFINITY, f64::min),
        max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        std: var.sqrt(),
    }
}

/// Summarizes a sample of integers.
#[must_use]
pub fn summarize_usize(xs: &[usize]) -> Summary {
    summarize(&xs.iter().map(|&x| x as f64).collect::<Vec<_>>())
}

/// Fraction of `true` entries.
#[must_use]
pub fn fraction(flags: &[bool]) -> f64 {
    if flags.is_empty() {
        return 0.0;
    }
    flags.iter().filter(|&&b| b).count() as f64 / flags.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_sample() {
        let s = summarize(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn usize_and_fraction() {
        let s = summarize_usize(&[2, 4]);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((fraction(&[true, false, true, true]) - 0.75).abs() < 1e-12);
        assert_eq!(fraction(&[]), 0.0);
    }
}

//! Named graph workloads shared by all experiments.

use netdecomp_graph::{generators, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A graph family with everything needed to instantiate it at a size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Family {
    /// Erdős–Rényi with expected degree `avg_degree`.
    Gnp {
        /// Expected average degree (p = avg_degree / (n-1)).
        avg_degree: f64,
    },
    /// Random `d`-regular.
    RandomRegular {
        /// The degree.
        d: usize,
    },
    /// Near-square 2D grid.
    Grid,
    /// Near-square 2D torus.
    Torus,
    /// Cycle.
    Cycle,
    /// Path.
    Path,
    /// Uniform random tree.
    Tree,
    /// Barabási–Albert with `attach` edges per newcomer.
    Ba {
        /// Attachment count.
        attach: usize,
    },
    /// Ring of cliques, `cave_size` vertices each.
    Caveman {
        /// Vertices per clique.
        cave_size: usize,
    },
    /// Hypercube (size rounded down to a power of two).
    Hypercube,
}

impl Family {
    /// Short label for table rows.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Family::Gnp { avg_degree } => format!("gnp(d~{avg_degree})"),
            Family::RandomRegular { d } => format!("reg({d})"),
            Family::Grid => "grid".into(),
            Family::Torus => "torus".into(),
            Family::Cycle => "cycle".into(),
            Family::Path => "path".into(),
            Family::Tree => "tree".into(),
            Family::Ba { attach } => format!("ba({attach})"),
            Family::Caveman { cave_size } => format!("caveman({cave_size})"),
            Family::Hypercube => "hypercube".into(),
        }
    }

    /// Instantiates the family at (approximately) `n` vertices.
    ///
    /// # Panics
    ///
    /// Panics if the family's parameters are infeasible at `n` (e.g. a
    /// regular degree `≥ n`); experiment configurations keep them feasible.
    #[must_use]
    pub fn build(&self, n: usize, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6772_6170_685f_7365);
        match self {
            Family::Gnp { avg_degree } => {
                let p = (avg_degree / (n.max(2) - 1) as f64).min(1.0);
                generators::gnp(n, p, &mut rng).expect("valid p")
            }
            Family::RandomRegular { d } => {
                let d = *d;
                let n = if (n * d) % 2 == 1 { n + 1 } else { n };
                generators::random_regular(n, d, &mut rng).expect("feasible degree")
            }
            Family::Grid => {
                let side = (n as f64).sqrt().round() as usize;
                generators::grid2d(side.max(1), n.div_ceil(side.max(1)))
            }
            Family::Torus => {
                let side = (n as f64).sqrt().round() as usize;
                generators::torus2d(side.max(1), n.div_ceil(side.max(1)))
            }
            Family::Cycle => generators::cycle(n),
            Family::Path => generators::path(n),
            Family::Tree => generators::random_tree(n, &mut rng),
            Family::Ba { attach } => {
                generators::barabasi_albert(n.max(attach + 1), *attach, &mut rng)
                    .expect("feasible attach")
            }
            Family::Caveman { cave_size } => {
                let caves = n.div_ceil(*cave_size).max(1);
                generators::caveman(caves, *cave_size).expect("positive sizes")
            }
            Family::Hypercube => {
                let d = (n.max(2) as f64).log2().floor() as u32;
                generators::hypercube(d).expect("small dimension")
            }
        }
    }
}

/// The default mixed workload used by the theorem sweeps.
#[must_use]
pub fn default_families() -> Vec<Family> {
    vec![
        Family::Gnp { avg_degree: 6.0 },
        Family::RandomRegular { d: 4 },
        Family::Grid,
        Family::Ba { attach: 3 },
        Family::Caveman { cave_size: 8 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_families_build() {
        for f in [
            Family::Gnp { avg_degree: 4.0 },
            Family::RandomRegular { d: 3 },
            Family::Grid,
            Family::Torus,
            Family::Cycle,
            Family::Path,
            Family::Tree,
            Family::Ba { attach: 2 },
            Family::Caveman { cave_size: 5 },
            Family::Hypercube,
        ] {
            let g = f.build(64, 1);
            assert!(g.vertex_count() >= 32, "{} too small", f.label());
            assert!(!f.label().is_empty());
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let f = Family::Gnp { avg_degree: 5.0 };
        assert_eq!(f.build(100, 7), f.build(100, 7));
    }

    #[test]
    fn grid_size_is_close() {
        let g = Family::Grid.build(100, 0);
        assert_eq!(g.vertex_count(), 100);
        let g = Family::Grid.build(90, 0);
        assert!(g.vertex_count() >= 90);
    }
}

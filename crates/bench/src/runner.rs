//! Parallel trial execution across seeds.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `trials` independent evaluations of `f` (one per seed `0..trials`)
/// across all available cores, returning results in seed order.
///
/// Uses `std::thread::scope` so `f` may borrow from the caller's stack
/// (graphs, parameter structs) without `'static` bounds.
pub fn par_trials<T, F>(trials: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(trials.max(1));
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..trials).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= trials {
                    break;
                }
                let out = f(i as u64);
                results.lock().expect("no poisoned trial lock")[i] = Some(out);
            });
        }
    });
    results
        .into_inner()
        .expect("no poisoned trial lock")
        .into_iter()
        .map(|r| r.expect("all trials filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_seed_order() {
        let out = par_trials(64, |seed| seed * 2);
        assert_eq!(out.len(), 64);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * 2);
        }
    }

    #[test]
    fn zero_trials() {
        let out: Vec<u64> = par_trials(0, |s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn borrows_caller_state() {
        let base = [10u64, 20, 30];
        let out = par_trials(3, |seed| base[seed as usize] + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }
}

//! Aligned text tables for experiment output.

use std::fmt;

use serde::Serialize;

/// A simple aligned text table with a title and caption.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Table {
    title: String,
    caption: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            caption: String::new(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Sets an explanatory caption printed under the title.
    pub fn set_caption(&mut self, caption: impl Into<String>) {
        self.caption = caption.into();
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the headers'.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        if !self.caption.is_empty() {
            writeln!(f, "{}", self.caption)?;
        }
        writeln!(f)?;
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for i in 0..cols {
                write!(f, " {:<width$} |", cells[i], width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<width$}|", "", width = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats an `Option<usize>` diameter, rendering `None` as `inf`
/// (disconnected cluster).
#[must_use]
pub fn fmt_diameter(d: Option<usize>) -> String {
    match d {
        Some(x) => x.to_string(),
        None => "inf".into(),
    }
}

/// Formats a float with 3 decimals.
#[must_use]
pub fn fmt_f(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.set_caption("caption text");
        t.push_row(vec!["1".into(), "2".into()]);
        t.push_row(vec!["333".into(), "4".into()]);
        let s = t.to_string();
        assert!(s.contains("## demo"));
        assert!(s.contains("caption text"));
        assert!(s.contains("| a   | long-header |"));
        assert!(s.contains("| 333 | 4           |"));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("demo", &["a"]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_diameter(Some(4)), "4");
        assert_eq!(fmt_diameter(None), "inf");
        assert_eq!(fmt_f(1.0 / 3.0), "0.333");
    }
}

//! Regenerates the paper's quantitative statements as text tables.
//!
//! ```text
//! cargo run -p netdecomp-bench --release --bin tables -- all
//! cargo run -p netdecomp-bench --release --bin tables -- e1 e4 --full
//! cargo run -p netdecomp-bench --release --bin tables -- e5 --json out.json
//! ```
//!
//! Every table prints *paper bound vs. measured value*; see DESIGN.md for
//! the experiment index and EXPERIMENTS.md for an archived full run. With
//! `--json <file>` the tables are additionally written as a JSON array for
//! machine consumption.

use netdecomp_bench::{experiments, json, Effort};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let effort = if args.iter().any(|a| a == "--full") {
        Effort::Full
    } else {
        Effort::Quick
    };
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let mut skip_next = false;
    let mut ids: Vec<String> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--json" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .cloned()
        .collect();
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = experiments::ALL.iter().map(|s| (*s).to_string()).collect();
    }
    for id in &ids {
        if !experiments::ALL.contains(&id.as_str()) {
            eprintln!(
                "unknown experiment `{id}`; known: {}",
                experiments::ALL.join(", ")
            );
            std::process::exit(2);
        }
    }

    println!(
        "# netdecomp experiment run ({} mode)\n",
        match effort {
            Effort::Quick => "quick",
            Effort::Full => "full",
        }
    );
    let mut all_tables = Vec::new();
    for id in ids {
        let start = std::time::Instant::now();
        let tables = experiments::run(&id, effort);
        for t in &tables {
            println!("{t}");
        }
        println!(
            "[{id}: {} table(s) in {:.1}s]\n",
            tables.len(),
            start.elapsed().as_secs_f64()
        );
        all_tables.extend(tables);
    }
    if let Some(path) = json_path {
        let body = json::to_json(&all_tables).expect("tables are JSON-clean");
        std::fs::write(&path, body).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {path}");
    }
}

//! A minimal JSON serializer backend for [`serde::Serialize`].
//!
//! The workspace's report types (`DecompositionReport`, parameter structs,
//! experiment tables) derive `Serialize`; this module turns them into JSON
//! text so experiment results are machine-readable — without pulling a
//! JSON crate into the dependency set (see DESIGN.md §4).
//!
//! Supported: the entire serde data model except byte strings and
//! deserialization (reports are write-only artifacts).

use std::fmt::Write as _;

use serde::ser::{self, Serialize};

/// Serializes any `Serialize` value to a compact JSON string.
///
/// # Errors
///
/// [`JsonError`] if the value contains non-finite floats, byte strings, or
/// map keys that are not strings.
///
/// # Example
///
/// ```
/// use netdecomp_bench::json::to_json;
/// use serde::Serialize;
///
/// #[derive(Serialize)]
/// struct Row { name: String, score: f64, tags: Vec<u32> }
///
/// let row = Row { name: "e1".into(), score: 0.5, tags: vec![1, 2] };
/// assert_eq!(
///     to_json(&row)?,
///     r#"{"name":"e1","score":0.5,"tags":[1,2]}"#
/// );
/// # Ok::<(), netdecomp_bench::json::JsonError>(())
/// ```
pub fn to_json<T: Serialize + ?Sized>(value: &T) -> Result<String, JsonError> {
    let mut ser = JsonSerializer { out: String::new() };
    value.serialize(&mut ser)?;
    Ok(ser.out)
}

/// Error produced when a value cannot be represented as JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(String);

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json serialization failed: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl ser::Error for JsonError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        JsonError(msg.to_string())
    }
}

struct JsonSerializer {
    out: String,
}

impl JsonSerializer {
    fn push_escaped(&mut self, s: &str) {
        self.out.push('"');
        for ch in s.chars() {
            match ch {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(self.out, "\\u{:04x}", c as u32);
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    fn push_f64(&mut self, v: f64) -> Result<(), JsonError> {
        if !v.is_finite() {
            return Err(JsonError(format!("non-finite float {v}")));
        }
        let _ = write!(self.out, "{v}");
        Ok(())
    }
}

/// Compound serializer tracking whether a separator is needed.
struct Compound<'a> {
    ser: &'a mut JsonSerializer,
    first: bool,
    closer: char,
}

impl Compound<'_> {
    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.ser.out.push(',');
        }
    }

    fn end_inner(self) {
        self.ser.out.push(self.closer);
    }
}

macro_rules! int_impls {
    ($($name:ident: $ty:ty),*) => {
        $(fn $name(self, v: $ty) -> Result<(), JsonError> {
            let _ = write!(self.out, "{v}");
            Ok(())
        })*
    };
}

impl<'a> ser::Serializer for &'a mut JsonSerializer {
    type Ok = ();
    type Error = JsonError;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeTupleStruct = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), JsonError> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    int_impls!(
        serialize_i8: i8, serialize_i16: i16, serialize_i32: i32, serialize_i64: i64,
        serialize_u8: u8, serialize_u16: u16, serialize_u32: u32, serialize_u64: u64
    );

    fn serialize_f32(self, v: f32) -> Result<(), JsonError> {
        self.push_f64(f64::from(v))
    }

    fn serialize_f64(self, v: f64) -> Result<(), JsonError> {
        self.push_f64(v)
    }

    fn serialize_char(self, v: char) -> Result<(), JsonError> {
        self.push_escaped(&v.to_string());
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), JsonError> {
        self.push_escaped(v);
        Ok(())
    }

    fn serialize_bytes(self, _v: &[u8]) -> Result<(), JsonError> {
        Err(JsonError("byte strings are not supported".into()))
    }

    fn serialize_none(self) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), JsonError> {
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), JsonError> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), JsonError> {
        self.serialize_unit()
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
    ) -> Result<(), JsonError> {
        self.push_escaped(variant);
        Ok(())
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        self.out.push('{');
        self.push_escaped(variant);
        self.out.push(':');
        value.serialize(&mut *self)?;
        self.out.push('}');
        Ok(())
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<Compound<'a>, JsonError> {
        self.out.push('[');
        Ok(Compound {
            ser: self,
            first: true,
            closer: ']',
        })
    }

    fn serialize_tuple(self, len: usize) -> Result<Compound<'a>, JsonError> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<Compound<'a>, JsonError> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, JsonError> {
        self.out.push('{');
        self.push_escaped(variant);
        self.out.push_str(":[");
        Ok(Compound {
            ser: self,
            first: true,
            closer: ']', // object brace closed in end()
        })
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<Compound<'a>, JsonError> {
        self.out.push('{');
        Ok(Compound {
            ser: self,
            first: true,
            closer: '}',
        })
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Compound<'a>, JsonError> {
        self.serialize_map(None)
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, JsonError> {
        self.out.push('{');
        self.push_escaped(variant);
        self.out.push_str(":{");
        Ok(Compound {
            ser: self,
            first: true,
            closer: '}', // object brace closed in end()
        })
    }
}

impl ser::SerializeSeq for Compound<'_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
        self.sep();
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), JsonError> {
        self.end_inner();
        Ok(())
    }
}

impl ser::SerializeTuple for Compound<'_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
        ser::SerializeSeq::serialize_element(self, value)
    }

    fn end(self) -> Result<(), JsonError> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeTupleStruct for Compound<'_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
        ser::SerializeSeq::serialize_element(self, value)
    }

    fn end(self) -> Result<(), JsonError> {
        ser::SerializeSeq::end(self)
    }
}

impl ser::SerializeTupleVariant for Compound<'_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
        ser::SerializeSeq::serialize_element(self, value)
    }

    fn end(self) -> Result<(), JsonError> {
        self.ser.out.push(']');
        self.ser.out.push('}');
        Ok(())
    }
}

impl ser::SerializeMap for Compound<'_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), JsonError> {
        self.sep();
        // JSON object keys must be strings: serialize the key and require
        // the output to be a string literal.
        let before = self.ser.out.len();
        key.serialize(&mut *self.ser)?;
        if !self.ser.out[before..].starts_with('"') {
            return Err(JsonError("map keys must be strings".into()));
        }
        self.ser.out.push(':');
        Ok(())
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), JsonError> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), JsonError> {
        self.end_inner();
        Ok(())
    }
}

impl ser::SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        self.sep();
        self.ser.push_escaped(key);
        self.ser.out.push(':');
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), JsonError> {
        self.end_inner();
        Ok(())
    }
}

impl ser::SerializeStructVariant for Compound<'_> {
    type Ok = ();
    type Error = JsonError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), JsonError> {
        ser::SerializeStruct::serialize_field(self, key, value)
    }

    fn end(self) -> Result<(), JsonError> {
        self.ser.out.push('}');
        self.ser.out.push('}');
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    #[derive(Serialize)]
    struct Nested {
        flag: bool,
        opt: Option<u32>,
        none: Option<u32>,
        list: Vec<i32>,
    }

    #[test]
    fn structs_and_options() {
        let v = Nested {
            flag: true,
            opt: Some(7),
            none: None,
            list: vec![-1, 2],
        };
        assert_eq!(
            to_json(&v).unwrap(),
            r#"{"flag":true,"opt":7,"none":null,"list":[-1,2]}"#
        );
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_json("a\"b\\c\nd\u{1}").unwrap(), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn numbers_and_floats() {
        assert_eq!(to_json(&42u64).unwrap(), "42");
        assert_eq!(to_json(&-3i32).unwrap(), "-3");
        assert_eq!(to_json(&2.5f64).unwrap(), "2.5");
        assert!(to_json(&f64::NAN).is_err());
        assert!(to_json(&f64::INFINITY).is_err());
    }

    #[derive(Serialize)]
    enum Mode {
        Quick,
        Custom { cells: u32 },
        Pair(u8, u8),
    }

    #[test]
    fn enum_representations() {
        assert_eq!(to_json(&Mode::Quick).unwrap(), r#""Quick""#);
        assert_eq!(
            to_json(&Mode::Custom { cells: 3 }).unwrap(),
            r#"{"Custom":{"cells":3}}"#
        );
        assert_eq!(to_json(&Mode::Pair(1, 2)).unwrap(), r#"{"Pair":[1,2]}"#);
    }

    #[test]
    fn maps_require_string_keys() {
        let mut ok = std::collections::BTreeMap::new();
        ok.insert("a".to_string(), 1u8);
        assert_eq!(to_json(&ok).unwrap(), r#"{"a":1}"#);
        let mut bad = std::collections::BTreeMap::new();
        bad.insert(3u32, 1u8);
        assert!(to_json(&bad).is_err());
    }

    #[test]
    fn tuples_and_units() {
        assert_eq!(to_json(&(1u8, "x")).unwrap(), r#"[1,"x"]"#);
        assert_eq!(to_json(&()).unwrap(), "null");
    }

    #[test]
    fn report_types_serialize() {
        // The workspace's own derived types go through cleanly.
        let params = netdecomp_core::params::DecompositionParams::new(3, 4.0).unwrap();
        let text = to_json(&params).unwrap();
        assert!(text.contains("\"k\":3"));
        assert!(text.contains("\"c\":4"));
    }
}

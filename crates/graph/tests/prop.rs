//! Property-based tests for the graph substrate.

use proptest::prelude::*;

use netdecomp_graph::{bfs, coloring, components, contraction, diameter, io};
use netdecomp_graph::{Graph, GraphBuilder, Partition, VertexSet};

/// Strategy: an arbitrary simple graph with `2..=max_n` vertices.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2usize..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(3 * n)).prop_map(move |pairs| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in pairs {
                if u != v {
                    b.add_edge(u, v).expect("in range");
                }
            }
            b.build()
        })
    })
}

proptest! {
    #[test]
    fn adjacency_is_symmetric(g in arb_graph(40)) {
        for u in g.vertices() {
            for &v in g.neighbors(u) {
                prop_assert!(g.has_edge(v, u), "edge {u}->{v} missing reverse");
            }
        }
    }

    #[test]
    fn degree_sum_is_twice_edges(g in arb_graph(40)) {
        let sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(sum, 2 * g.edge_count());
    }

    #[test]
    fn bfs_distances_satisfy_edge_lipschitz(g in arb_graph(30)) {
        // |d(s,u) - d(s,v)| <= 1 for every edge (u,v) reachable from s.
        let d = bfs::distances(&g, 0);
        for (u, v) in g.edges() {
            if let (Some(du), Some(dv)) = (d[u], d[v]) {
                prop_assert!(du.abs_diff(dv) <= 1);
            } else {
                prop_assert_eq!(d[u], d[v]); // both unreachable or neither
            }
        }
    }

    #[test]
    fn bfs_is_symmetric_between_pairs(g in arb_graph(25)) {
        let d0 = bfs::distances(&g, 0);
        for v in g.vertices() {
            let dv = bfs::distances(&g, v);
            prop_assert_eq!(d0[v], dv[0], "asymmetric distance 0 <-> {}", v);
        }
    }

    #[test]
    fn restricted_bfs_never_shorter_than_unrestricted(g in arb_graph(25)) {
        let full = VertexSet::full(g.vertex_count());
        let unres = bfs::distances(&g, 0);
        let mut alive = full.clone();
        // Kill the top half of vertex ids (except 0).
        for v in (g.vertex_count() / 2).max(1)..g.vertex_count() {
            alive.remove(v);
        }
        if alive.contains(0) {
            let res = bfs::distances_restricted(&g, 0, &alive);
            for v in g.vertices() {
                match (res[v], unres[v]) {
                    (Some(r), Some(u)) => prop_assert!(r >= u),
                    (Some(_), None) => prop_assert!(false, "restricted reached unreachable {v}"),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn components_partition_the_graph(g in arb_graph(40)) {
        let c = components::components(&g);
        let groups = c.groups();
        let total: usize = groups.iter().map(Vec::len).sum();
        prop_assert_eq!(total, g.vertex_count());
        // No edge crosses between components.
        for (u, v) in g.edges() {
            prop_assert_eq!(c.label(u), c.label(v));
        }
    }

    #[test]
    fn greedy_coloring_is_proper_and_bounded(g in arb_graph(40)) {
        let col = coloring::greedy(&g);
        prop_assert!(col.is_proper(&g));
        prop_assert!(col.color_count() <= g.max_degree() + 1);
    }

    #[test]
    fn strong_diameter_at_least_weak(g in arb_graph(20)) {
        // For any subset, weak diameter <= strong diameter (when both finite).
        let n = g.vertex_count();
        let mut cluster = VertexSet::new(n);
        for v in (0..n).step_by(2) {
            cluster.insert(v);
        }
        let strong = diameter::strong_diameter(&g, &cluster);
        let weak = diameter::weak_diameter(&g, &cluster);
        if let (Some(s), Some(w)) = (strong, weak) {
            prop_assert!(w <= s, "weak {w} > strong {s}");
        }
    }

    #[test]
    fn edge_list_round_trips(g in arb_graph(40)) {
        let text = io::to_edge_list(&g);
        let back = io::from_edge_list(&text).expect("own output parses");
        prop_assert_eq!(g, back);
    }

    #[test]
    fn contraction_preserves_adjacency_structure(g in arb_graph(30)) {
        // Partition by vertex id parity; supergraph edge exists iff some
        // original edge crosses parities.
        let n = g.vertex_count();
        let p = Partition::from_assignment((0..n).map(|v| Some(v % 2)).collect());
        let c = contraction::contract(&g, &p).expect("sizes match");
        let crossing = g.edges().any(|(u, v)| u % 2 != v % 2);
        prop_assert_eq!(c.supergraph().edge_count() == 1, crossing);
    }

    #[test]
    fn vertex_set_iter_matches_contains(members in proptest::collection::hash_set(0usize..200, 0..50)) {
        let mut s = VertexSet::new(200);
        for &v in &members {
            s.insert(v);
        }
        prop_assert_eq!(s.len(), members.len());
        let from_iter: std::collections::HashSet<usize> = s.iter().collect();
        prop_assert_eq!(from_iter, members);
    }

    #[test]
    fn two_sweep_never_exceeds_diameter(g in arb_graph(20)) {
        if let Some(exact) = diameter::diameter(&g) {
            let lb = diameter::two_sweep_lower_bound(&g, 0).unwrap();
            prop_assert!(lb <= exact);
        }
    }
}

//! A tiny self-describing edge-list text format.
//!
//! Line 1: `n m` (vertex and edge counts); then `m` lines `u v`, one edge
//! each, `0 ≤ u, v < n`. Blank lines and lines starting with `#` are
//! ignored. This keeps experiment inputs and outputs diffable and
//! versionable without binary formats.

use crate::{Graph, GraphBuilder, GraphError};
use std::fmt::Write as _;

/// Serializes a graph into the edge-list text format.
///
/// # Example
///
/// ```
/// use netdecomp_graph::{generators, io};
///
/// let g = generators::path(3);
/// let text = io::to_edge_list(&g);
/// let back = io::from_edge_list(&text)?;
/// assert_eq!(g, back);
/// # Ok::<(), netdecomp_graph::GraphError>(())
/// ```
#[must_use]
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} {}", g.vertex_count(), g.edge_count());
    for (u, v) in g.edges() {
        let _ = writeln!(out, "{u} {v}");
    }
    out
}

/// Parses the edge-list text format produced by [`to_edge_list`].
///
/// # Errors
///
/// [`GraphError::Parse`] on malformed input (missing header, non-integer
/// tokens, wrong edge count); [`GraphError::VertexOutOfRange`] /
/// [`GraphError::SelfLoop`] for invalid edges.
pub fn from_edge_list(text: &str) -> Result<Graph, GraphError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    let (line_no, header) = lines.next().ok_or(GraphError::Parse {
        line: 1,
        reason: "missing `n m` header".into(),
    })?;
    let mut parts = header.split_whitespace();
    let n: usize = parse_token(parts.next(), line_no, "vertex count")?;
    let m: usize = parse_token(parts.next(), line_no, "edge count")?;
    if parts.next().is_some() {
        return Err(GraphError::Parse {
            line: line_no,
            reason: "header must be exactly `n m`".into(),
        });
    }

    let mut b = GraphBuilder::with_edge_capacity(n, m);
    let mut edges = 0usize;
    for (line_no, line) in lines {
        let mut parts = line.split_whitespace();
        let u: usize = parse_token(parts.next(), line_no, "edge endpoint")?;
        let v: usize = parse_token(parts.next(), line_no, "edge endpoint")?;
        if parts.next().is_some() {
            return Err(GraphError::Parse {
                line: line_no,
                reason: "edge line must be exactly `u v`".into(),
            });
        }
        b.add_edge(u, v)?;
        edges += 1;
    }
    if edges != m {
        return Err(GraphError::Parse {
            line: line_no,
            reason: format!("header declared {m} edges but {edges} were listed"),
        });
    }
    Ok(b.build())
}

fn parse_token(token: Option<&str>, line: usize, what: &str) -> Result<usize, GraphError> {
    let token = token.ok_or_else(|| GraphError::Parse {
        line,
        reason: format!("missing {what}"),
    })?;
    token.parse().map_err(|_| GraphError::Parse {
        line,
        reason: format!("{what} `{token}` is not a non-negative integer"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn round_trip_random_graph() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let g = generators::gnp(30, 0.2, &mut rng).unwrap();
        let back = from_edge_list(&to_edge_list(&g)).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a comment\n\n3 2\n0 1\n# another\n1 2\n";
        let g = from_edge_list(text).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn missing_header_is_error() {
        assert!(matches!(
            from_edge_list("# only comments\n"),
            Err(GraphError::Parse { .. })
        ));
        assert!(matches!(from_edge_list(""), Err(GraphError::Parse { .. })));
    }

    #[test]
    fn bad_tokens_are_errors() {
        assert!(matches!(
            from_edge_list("3 x\n"),
            Err(GraphError::Parse { .. })
        ));
        assert!(matches!(
            from_edge_list("3 1\n0 one\n"),
            Err(GraphError::Parse { .. })
        ));
        assert!(matches!(
            from_edge_list("3 1\n0 1 2\n"),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn edge_count_mismatch_is_error() {
        let err = from_edge_list("3 2\n0 1\n").unwrap_err();
        assert!(err.to_string().contains("declared 2 edges"));
    }

    #[test]
    fn out_of_range_edge_propagates() {
        assert!(matches!(
            from_edge_list("2 1\n0 5\n"),
            Err(GraphError::VertexOutOfRange { .. })
        ));
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = Graph::empty(4);
        assert_eq!(from_edge_list(&to_edge_list(&g)).unwrap(), g);
    }
}

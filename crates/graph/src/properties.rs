//! Aggregate structural properties of graphs.

use crate::{components, Graph};

/// Summary statistics of a graph, handy for experiment logs.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub vertex_count: usize,
    /// Number of undirected edges.
    pub edge_count: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree `Δ`.
    pub max_degree: usize,
    /// Average degree `2m/n` (0 for the empty graph).
    pub avg_degree: f64,
    /// Number of connected components.
    pub component_count: usize,
}

/// Computes [`GraphStats`] for `g`.
///
/// # Example
///
/// ```
/// use netdecomp_graph::{generators, properties};
///
/// let s = properties::stats(&generators::cycle(5));
/// assert_eq!(s.max_degree, 2);
/// assert_eq!(s.component_count, 1);
/// ```
#[must_use]
pub fn stats(g: &Graph) -> GraphStats {
    let n = g.vertex_count();
    let degrees: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
    GraphStats {
        vertex_count: n,
        edge_count: g.edge_count(),
        min_degree: degrees.iter().copied().min().unwrap_or(0),
        max_degree: degrees.iter().copied().max().unwrap_or(0),
        avg_degree: if n == 0 {
            0.0
        } else {
            2.0 * g.edge_count() as f64 / n as f64
        },
        component_count: components::components(g).count(),
    }
}

/// Degree histogram: `hist[d]` = number of vertices of degree `d`.
#[must_use]
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.vertices() {
        hist[g.degree(v)] += 1;
    }
    if g.is_empty() {
        hist.clear();
    }
    hist
}

/// Edge density `m / C(n, 2)`; 0 when `n < 2`.
#[must_use]
pub fn density(g: &Graph) -> f64 {
    let n = g.vertex_count();
    if n < 2 {
        return 0.0;
    }
    g.edge_count() as f64 / (n * (n - 1) / 2) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn stats_of_path() {
        let s = stats(&generators::path(4));
        assert_eq!(s.vertex_count, 4);
        assert_eq!(s.edge_count, 3);
        assert_eq!(s.min_degree, 1);
        assert_eq!(s.max_degree, 2);
        assert!((s.avg_degree - 1.5).abs() < 1e-12);
        assert_eq!(s.component_count, 1);
    }

    #[test]
    fn stats_of_empty() {
        let s = stats(&Graph::empty(0));
        assert_eq!(s.vertex_count, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.component_count, 0);
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = generators::star(7);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 7);
        assert_eq!(h[1], 6);
        assert_eq!(h[6], 1);
    }

    #[test]
    fn density_bounds() {
        assert!((density(&generators::complete(5)) - 1.0).abs() < 1e-12);
        assert_eq!(density(&Graph::empty(5)), 0.0);
        assert_eq!(density(&Graph::empty(1)), 0.0);
    }
}

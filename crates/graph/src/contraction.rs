//! Quotient graphs: contracting a partition into its supergraph `G(P)`.
//!
//! The paper's supergraph has one vertex per cluster and an edge between two
//! clusters whenever some original edge crosses between them. A network
//! decomposition is a partition whose supergraph is properly `χ`-colorable.

use crate::{Graph, GraphBuilder, GraphError, Partition, VertexId};

/// The result of contracting a graph along a partition.
#[derive(Debug, Clone)]
pub struct Contraction {
    /// The supergraph `G(P)`: vertex `c` is cluster `c` of the partition.
    supergraph: Graph,
    /// For every original vertex, the supergraph vertex (cluster) it maps to.
    mapping: Vec<Option<usize>>,
}

impl Contraction {
    /// The supergraph `G(P)`.
    #[must_use]
    pub fn supergraph(&self) -> &Graph {
        &self.supergraph
    }

    /// Mapping from original vertices to supergraph vertices.
    #[must_use]
    pub fn mapping(&self) -> &[Option<usize>] {
        &self.mapping
    }

    /// Supergraph vertex of original vertex `v`.
    #[must_use]
    pub fn image(&self, v: VertexId) -> Option<usize> {
        self.mapping[v]
    }
}

/// Contracts each cluster of `partition` to a single supergraph vertex.
///
/// Edges internal to a cluster disappear; multi-edges between clusters are
/// collapsed. Unassigned vertices are simply absent from the supergraph
/// (their edges are ignored), so contracting a *partial* partition yields the
/// supergraph of the assigned portion.
///
/// # Errors
///
/// [`GraphError::InvalidPartition`] if the partition's vertex count differs
/// from the graph's.
pub fn contract(g: &Graph, partition: &Partition) -> Result<Contraction, GraphError> {
    if partition.vertex_count() != g.vertex_count() {
        return Err(GraphError::InvalidPartition {
            reason: format!(
                "partition covers {} vertices but graph has {}",
                partition.vertex_count(),
                g.vertex_count()
            ),
        });
    }
    let mut b = GraphBuilder::new(partition.cluster_count());
    for (u, v) in g.edges() {
        if let (Some(cu), Some(cv)) = (partition.cluster_of(u), partition.cluster_of(v)) {
            if cu != cv {
                b.add_edge(cu, cv)
                    .expect("cluster ids are dense and distinct");
            }
        }
    }
    Ok(Contraction {
        supergraph: b.build(),
        mapping: partition.assignment().to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn contracting_path_halves() {
        // Path 0-1-2-3; clusters {0,1} and {2,3} -> single superedge.
        let g = generators::path(4);
        let mut p = Partition::new(4);
        p.push_cluster(&[0, 1]);
        p.push_cluster(&[2, 3]);
        let c = contract(&g, &p).unwrap();
        assert_eq!(c.supergraph().vertex_count(), 2);
        assert_eq!(c.supergraph().edge_count(), 1);
        assert_eq!(c.image(0), Some(0));
        assert_eq!(c.image(3), Some(1));
    }

    #[test]
    fn internal_edges_vanish() {
        let g = generators::complete(4);
        let mut p = Partition::new(4);
        p.push_cluster(&[0, 1, 2, 3]);
        let c = contract(&g, &p).unwrap();
        assert_eq!(c.supergraph().vertex_count(), 1);
        assert_eq!(c.supergraph().edge_count(), 0);
    }

    #[test]
    fn multiple_crossing_edges_collapse() {
        // K4 split into two pairs: 4 crossing edges -> 1 superedge.
        let g = generators::complete(4);
        let mut p = Partition::new(4);
        p.push_cluster(&[0, 1]);
        p.push_cluster(&[2, 3]);
        let c = contract(&g, &p).unwrap();
        assert_eq!(c.supergraph().edge_count(), 1);
    }

    #[test]
    fn unassigned_vertices_are_skipped() {
        let g = generators::path(5);
        let mut p = Partition::new(5);
        p.push_cluster(&[0, 1]);
        p.push_cluster(&[3, 4]);
        // vertex 2 unassigned: clusters are NOT adjacent in the supergraph.
        let c = contract(&g, &p).unwrap();
        assert_eq!(c.supergraph().vertex_count(), 2);
        assert_eq!(c.supergraph().edge_count(), 0);
        assert_eq!(c.image(2), None);
    }

    #[test]
    fn mismatched_sizes_error() {
        let g = generators::path(3);
        let p = Partition::new(4);
        assert!(matches!(
            contract(&g, &p),
            Err(GraphError::InvalidPartition { .. })
        ));
    }

    #[test]
    fn supergraph_of_singletons_is_isomorphic() {
        let g = generators::cycle(5);
        let p = Partition::singletons(5);
        let c = contract(&g, &p).unwrap();
        assert_eq!(c.supergraph().edge_count(), g.edge_count());
        assert_eq!(c.supergraph().vertex_count(), 5);
    }
}

//! Proper vertex colorings and the greedy coloring heuristic.

use crate::{Graph, VertexId};

/// A proper coloring: `colors[v]` is the color of vertex `v`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    colors: Vec<usize>,
    color_count: usize,
}

impl Coloring {
    /// Wraps a color vector, computing the number of distinct colors used.
    ///
    /// # Panics
    ///
    /// Panics if `colors` is non-empty and skips color indices (colors must
    /// be dense `0..count`).
    #[must_use]
    pub fn from_vec(colors: Vec<usize>) -> Self {
        let color_count = colors.iter().map(|&c| c + 1).max().unwrap_or(0);
        let mut seen = vec![false; color_count];
        for &c in &colors {
            seen[c] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "color indices must be dense 0..count"
        );
        Coloring {
            colors,
            color_count,
        }
    }

    /// Color of vertex `v`.
    #[must_use]
    pub fn color(&self, v: VertexId) -> usize {
        self.colors[v]
    }

    /// Number of colors used.
    #[must_use]
    pub fn color_count(&self) -> usize {
        self.color_count
    }

    /// Slice of all colors, indexed by vertex.
    #[must_use]
    pub fn colors(&self) -> &[usize] {
        &self.colors
    }

    /// Vertices of each color class, indexed by color.
    #[must_use]
    pub fn classes(&self) -> Vec<Vec<VertexId>> {
        let mut out = vec![Vec::new(); self.color_count];
        for (v, &c) in self.colors.iter().enumerate() {
            out[c].push(v);
        }
        out
    }

    /// `true` if no edge of `g` is monochromatic.
    #[must_use]
    pub fn is_proper(&self, g: &Graph) -> bool {
        g.edges().all(|(u, v)| self.colors[u] != self.colors[v])
    }
}

/// Greedy coloring in vertex-id order: each vertex takes the smallest color
/// unused by its already-colored neighbors. Uses at most `Δ + 1` colors.
///
/// # Example
///
/// ```
/// use netdecomp_graph::{generators, coloring};
///
/// let g = generators::cycle(4);
/// let c = coloring::greedy(&g);
/// assert!(c.is_proper(&g));
/// assert!(c.color_count() <= 3);
/// ```
#[must_use]
pub fn greedy(g: &Graph) -> Coloring {
    greedy_in_order(g, g.vertices())
}

/// Greedy coloring following the supplied vertex order.
///
/// Every vertex must appear exactly once in `order`.
///
/// # Panics
///
/// Panics if `order` visits a vertex twice or omits one.
#[must_use]
pub fn greedy_in_order<I>(g: &Graph, order: I) -> Coloring
where
    I: IntoIterator<Item = VertexId>,
{
    let n = g.vertex_count();
    let mut colors: Vec<Option<usize>> = vec![None; n];
    let mut forbidden = vec![usize::MAX; n.max(1)]; // stamp per color: last vertex using it
    let mut visited = 0usize;
    for v in order {
        assert!(colors[v].is_none(), "vertex {v} visited twice in order");
        visited += 1;
        for &u in g.neighbors(v) {
            if let Some(cu) = colors[u] {
                forbidden[cu] = v;
            }
        }
        let c = (0..n)
            .find(|&c| forbidden[c] != v)
            .expect("some color free");
        colors[v] = Some(c);
    }
    assert_eq!(visited, n, "order must visit every vertex");
    Coloring::from_vec(
        colors
            .into_iter()
            .map(|c| c.expect("all colored"))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn greedy_is_proper_and_bounded() {
        for g in [
            generators::complete(6),
            generators::cycle(7),
            generators::path(10),
            generators::star(9),
        ] {
            let c = greedy(&g);
            assert!(c.is_proper(&g));
            assert!(c.color_count() <= g.max_degree() + 1);
        }
    }

    #[test]
    fn complete_graph_needs_n_colors() {
        let g = generators::complete(5);
        assert_eq!(greedy(&g).color_count(), 5);
    }

    #[test]
    fn bipartite_greedy_in_bfs_order_uses_two_colors() {
        let g = generators::complete_bipartite(3, 4);
        let c = greedy(&g);
        assert!(c.is_proper(&g));
        assert_eq!(c.color_count(), 2);
    }

    #[test]
    fn classes_partition_vertices() {
        let g = generators::cycle(5);
        let c = greedy(&g);
        let classes = c.classes();
        assert_eq!(classes.iter().map(Vec::len).sum::<usize>(), 5);
        for (color, class) in classes.iter().enumerate() {
            for &v in class {
                assert_eq!(c.color(v), color);
            }
        }
    }

    #[test]
    fn empty_graph_coloring() {
        let g = Graph::empty(0);
        let c = greedy(&g);
        assert_eq!(c.color_count(), 0);
        assert!(c.is_proper(&g));
    }

    #[test]
    fn edgeless_graph_uses_one_color() {
        let g = Graph::empty(4);
        let c = greedy(&g);
        assert_eq!(c.color_count(), 1);
    }

    #[test]
    fn is_proper_detects_violation() {
        let g = generators::path(3);
        let bad = Coloring::from_vec(vec![0, 0, 1]);
        assert!(!bad.is_proper(&g));
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn from_vec_rejects_sparse_colors() {
        let _ = Coloring::from_vec(vec![0, 2]);
    }

    #[test]
    fn greedy_in_custom_order() {
        let g = generators::path(4);
        let c = greedy_in_order(&g, [3, 2, 1, 0]);
        assert!(c.is_proper(&g));
        assert!(c.color_count() <= 2);
    }
}

//! Synthetic graph families used as experiment workloads.
//!
//! Deterministic topologies ([`path`], [`cycle`], [`star`], [`complete`],
//! [`complete_bipartite`], [`grid2d`], [`torus2d`], [`hypercube`]) are
//! infallible; randomized families ([`gnp`], [`random_tree`],
//! [`random_regular`], [`barabasi_albert`], [`caveman`]) take a caller-owned
//! RNG so every experiment is reproducible from a seed.
//!
//! The families deliberately span the diameter/expansion spectrum: paths,
//! grids and caveman graphs have large diameter (exercising the high-radius
//! regime of Theorem 3), while G(n,p), random-regular and Barabási–Albert
//! graphs have logarithmic diameter (the headline `k = ln n` regime).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{Graph, GraphBuilder, GraphError, VertexId};

/// Path on `n` vertices: `0 − 1 − … − (n−1)`.
#[must_use]
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::with_edge_capacity(n, n.saturating_sub(1));
    for v in 1..n {
        b.add_edge(v - 1, v).expect("indices in range");
    }
    b.build()
}

/// Cycle on `n` vertices (`n ≥ 3`); for `n < 3` falls back to a path.
#[must_use]
pub fn cycle(n: usize) -> Graph {
    if n < 3 {
        return path(n);
    }
    let mut b = GraphBuilder::with_edge_capacity(n, n);
    for v in 1..n {
        b.add_edge(v - 1, v).expect("indices in range");
    }
    b.add_edge(n - 1, 0).expect("indices in range");
    b.build()
}

/// Star with hub `0` and `n − 1` leaves.
#[must_use]
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::with_edge_capacity(n, n.saturating_sub(1));
    for v in 1..n {
        b.add_edge(0, v).expect("indices in range");
    }
    b.build()
}

/// Complete graph `K_n`.
#[must_use]
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::with_edge_capacity(n, n * n.saturating_sub(1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v).expect("indices in range");
        }
    }
    b.build()
}

/// Complete bipartite graph `K_{a,b}`: sides `0..a` and `a..a+b`.
#[must_use]
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut builder = GraphBuilder::with_edge_capacity(a + b, a * b);
    for u in 0..a {
        for v in a..(a + b) {
            builder.add_edge(u, v).expect("indices in range");
        }
    }
    builder.build()
}

/// `rows × cols` grid; vertex `(r, c)` has index `r·cols + c`.
#[must_use]
pub fn grid2d(rows: usize, cols: usize) -> Graph {
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                b.add_edge(v, v + 1).expect("indices in range");
            }
            if r + 1 < rows {
                b.add_edge(v, v + cols).expect("indices in range");
            }
        }
    }
    b.build()
}

/// `rows × cols` torus (grid with wraparound). Wraparound edges that would
/// duplicate grid edges (side length ≤ 2) are collapsed automatically.
#[must_use]
pub fn torus2d(rows: usize, cols: usize) -> Graph {
    let mut b = GraphBuilder::new(rows * cols);
    let idx = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            let v = idx(r, c);
            if cols > 1 {
                let right = idx(r, (c + 1) % cols);
                if right != v {
                    b.add_edge(v, right).expect("indices in range");
                }
            }
            if rows > 1 {
                let down = idx((r + 1) % rows, c);
                if down != v {
                    b.add_edge(v, down).expect("indices in range");
                }
            }
        }
    }
    b.build()
}

/// Hypercube `Q_d` on `2^d` vertices; vertices adjacent iff their indices
/// differ in exactly one bit.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] if `d > 24` (guard against 16M+ vertex
/// accidents).
pub fn hypercube(d: u32) -> Result<Graph, GraphError> {
    if d > 24 {
        return Err(GraphError::InvalidParameter {
            reason: format!("hypercube dimension {d} too large (max 24)"),
        });
    }
    let n = 1usize << d;
    let mut b = GraphBuilder::with_edge_capacity(n, n * d as usize / 2);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if u > v {
                b.add_edge(v, u).expect("indices in range");
            }
        }
    }
    Ok(b.build())
}

/// Erdős–Rényi `G(n, p)`: each of the `n·(n−1)/2` edges present
/// independently with probability `p`.
///
/// Uses geometric skipping, so the cost is `O(n + m)` rather than `O(n²)`
/// for small `p`.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] if `p` is not in `[0, 1]` or not finite.
pub fn gnp<R: Rng>(n: usize, p: f64, rng: &mut R) -> Result<Graph, GraphError> {
    if !(0.0..=1.0).contains(&p) || !p.is_finite() {
        return Err(GraphError::InvalidParameter {
            reason: format!("edge probability {p} must lie in [0, 1]"),
        });
    }
    let mut b = GraphBuilder::new(n);
    if p == 0.0 || n < 2 {
        return Ok(b.build());
    }
    if p == 1.0 {
        return Ok(complete(n));
    }
    // Iterate edge slots in lexicographic order, skipping ahead by
    // geometrically distributed gaps.
    let log1p = (1.0 - p).ln();
    let total = n * (n - 1) / 2;
    let mut slot = 0usize;
    loop {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let skip = (u.ln() / log1p).floor() as usize;
        slot = match slot.checked_add(skip) {
            Some(s) => s,
            None => break,
        };
        if slot >= total {
            break;
        }
        let (a, bb) = edge_slot_to_pair(n, slot);
        b.add_edge(a, bb).expect("indices in range");
        slot += 1;
    }
    Ok(b.build())
}

/// Maps a lexicographic edge-slot index to the pair `(u, v)`, `u < v`.
fn edge_slot_to_pair(n: usize, slot: usize) -> (VertexId, VertexId) {
    // Row u owns (n-1-u) slots; find the row by walking (amortized O(1) per
    // generated edge thanks to monotone slots would need state; use direct
    // solve instead).
    // slot = u*n - u*(u+1)/2 + (v - u - 1)
    let mut u = 0usize;
    let mut offset = 0usize;
    loop {
        let row = n - 1 - u;
        if slot < offset + row {
            let v = u + 1 + (slot - offset);
            return (u, v);
        }
        offset += row;
        u += 1;
    }
}

/// Uniform random labelled tree on `n` vertices via a random Prüfer sequence.
#[must_use]
pub fn random_tree<R: Rng>(n: usize, rng: &mut R) -> Graph {
    if n <= 1 {
        return Graph::empty(n);
    }
    if n == 2 {
        return Graph::from_edges(2, &[(0, 1)]).expect("valid edge");
    }
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &x in &prufer {
        degree[x] += 1;
    }
    let mut b = GraphBuilder::with_edge_capacity(n, n - 1);
    // Min-leaf extraction via a pointer sweep (classic O(n) decode needs a
    // heap; O(n log n) with a BinaryHeap is fine here).
    let mut leaves: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&v| degree[v] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for &x in &prufer {
        let std::cmp::Reverse(leaf) = leaves.pop().expect("tree decode invariant");
        b.add_edge(leaf, x).expect("indices in range");
        degree[x] -= 1;
        if degree[x] == 1 {
            leaves.push(std::cmp::Reverse(x));
        }
    }
    let std::cmp::Reverse(a) = leaves.pop().expect("two leaves remain");
    let std::cmp::Reverse(c) = leaves.pop().expect("two leaves remain");
    b.add_edge(a, c).expect("indices in range");
    b.build()
}

/// Random `d`-regular graph via the configuration (pairing) model with
/// edge-swap repair of self-loops and multi-edges.
///
/// Starting from a uniform stub pairing, defective pairs (loops or
/// duplicates) are repeatedly repaired by double-edge swaps against random
/// partners, which preserves the degree sequence. The repair converges
/// rapidly whenever `d ≪ n`.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] if `n·d` is odd, `d ≥ n` (with `n > 0`),
/// or the repair budget is exhausted (only plausible for `d` close to `n`).
pub fn random_regular<R: Rng>(n: usize, d: usize, rng: &mut R) -> Result<Graph, GraphError> {
    if d >= n && !(n == 0 && d == 0) {
        return Err(GraphError::InvalidParameter {
            reason: format!("degree {d} must be smaller than n = {n}"),
        });
    }
    if !(n * d).is_multiple_of(2) {
        return Err(GraphError::InvalidParameter {
            reason: format!("n*d = {} must be even", n * d),
        });
    }
    if d == 0 {
        return Ok(Graph::empty(n));
    }
    let mut stubs: Vec<VertexId> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
    stubs.shuffle(rng);
    let mut pairs: Vec<(VertexId, VertexId)> =
        stubs.chunks_exact(2).map(|p| (p[0], p[1])).collect();
    let m = pairs.len();
    let budget = 200 * m + 10_000;
    let mut spent = 0usize;
    loop {
        // Index multi-edges: map normalized pair -> multiplicity.
        let mut mult: std::collections::HashMap<(VertexId, VertexId), usize> =
            std::collections::HashMap::with_capacity(m);
        let mut bad: Vec<usize> = Vec::new();
        for (i, &(u, v)) in pairs.iter().enumerate() {
            if u == v {
                bad.push(i);
                continue;
            }
            let key = if u < v { (u, v) } else { (v, u) };
            let count = mult.entry(key).or_insert(0);
            if *count > 0 {
                bad.push(i);
            }
            *count += 1;
        }
        if bad.is_empty() {
            break;
        }
        for i in bad {
            let j = rng.gen_range(0..m);
            if j == i {
                continue;
            }
            // Double-edge swap: (a,b),(c,e) -> (a,e),(c,b).
            let (a, b) = pairs[i];
            let (c, e) = pairs[j];
            pairs[i] = (a, e);
            pairs[j] = (c, b);
        }
        spent += 1;
        if spent > budget {
            return Err(GraphError::InvalidParameter {
                reason: format!(
                    "could not repair a simple {d}-regular pairing for n = {n} within budget"
                ),
            });
        }
    }
    let mut builder = GraphBuilder::with_edge_capacity(n, m);
    for (u, v) in pairs {
        builder.add_edge(u, v).expect("indices in range");
    }
    Ok(builder.build())
}

/// Barabási–Albert preferential attachment: starts from a clique on
/// `m0 = attach` vertices, then each new vertex attaches to `attach` distinct
/// existing vertices chosen proportionally to degree.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] if `attach == 0` or `attach >= n`.
pub fn barabasi_albert<R: Rng>(n: usize, attach: usize, rng: &mut R) -> Result<Graph, GraphError> {
    if attach == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "attachment count must be positive".into(),
        });
    }
    if attach >= n {
        return Err(GraphError::InvalidParameter {
            reason: format!("attachment count {attach} must be smaller than n = {n}"),
        });
    }
    let mut b = GraphBuilder::new(n);
    // Repeated-endpoint list: sampling uniformly from it is sampling
    // proportionally to degree.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * attach);
    for u in 0..attach {
        for v in (u + 1)..attach {
            b.add_edge(u, v).expect("indices in range");
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    let start = if attach == 1 {
        // Seed with the single vertex 0; the endpoint list must be non-empty
        // for degree-proportional sampling to start.
        endpoints.push(0);
        1
    } else {
        attach
    };
    for v in start..n {
        let mut chosen = std::collections::HashSet::with_capacity(attach);
        while chosen.len() < attach {
            let idx = rng.gen_range(0..endpoints.len());
            chosen.insert(endpoints[idx]);
        }
        for &u in &chosen {
            b.add_edge(v, u).expect("indices in range");
            endpoints.push(v);
            endpoints.push(u);
        }
    }
    Ok(b.build())
}

/// Connected caveman graph: `caves` cliques of `cave_size` vertices arranged
/// in a ring, consecutive cliques joined by a single edge.
///
/// This family has both dense local structure and large global diameter — the
/// workload where weak-diameter clusters (Linial–Saks) can stray far from
/// their strong diameter.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] if `caves == 0` or `cave_size == 0`.
pub fn caveman(caves: usize, cave_size: usize) -> Result<Graph, GraphError> {
    if caves == 0 || cave_size == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "caveman graph needs at least one cave of at least one vertex".into(),
        });
    }
    let n = caves * cave_size;
    let mut b = GraphBuilder::new(n);
    for cave in 0..caves {
        let base = cave * cave_size;
        for u in 0..cave_size {
            for v in (u + 1)..cave_size {
                b.add_edge(base + u, base + v).expect("indices in range");
            }
        }
    }
    if caves > 1 {
        for cave in 0..caves {
            let next = (cave + 1) % caves;
            if cave == next {
                continue;
            }
            // Join the "last" vertex of this cave to the "first" of the next.
            let a = cave * cave_size + (cave_size - 1);
            let c = next * cave_size;
            if a != c {
                b.add_edge(a, c).expect("indices in range");
            }
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{components, diameter};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(diameter::diameter(&g), Some(4));
    }

    #[test]
    fn tiny_paths_and_cycles() {
        assert_eq!(path(0).vertex_count(), 0);
        assert_eq!(path(1).edge_count(), 0);
        assert_eq!(cycle(2).edge_count(), 1); // falls back to path
        assert_eq!(cycle(3).edge_count(), 3);
    }

    #[test]
    fn star_shape() {
        let g = star(6);
        assert_eq!(g.degree(0), 5);
        assert!(g.vertices().skip(1).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn complete_counts() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn bipartite_counts_and_properness() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.vertex_count(), 7);
        assert_eq!(g.edge_count(), 12);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(0, 3));
    }

    #[test]
    fn grid_and_torus_degrees() {
        let g = grid2d(3, 4);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4);
        assert_eq!(g.degree(0), 2);
        let t = torus2d(3, 4);
        assert!(t.vertices().all(|v| t.degree(v) == 4));
        assert_eq!(t.edge_count(), 2 * 12);
    }

    #[test]
    fn degenerate_torus_has_no_duplicate_edges() {
        let t = torus2d(2, 2);
        assert!(t.vertices().all(|v| t.degree(v) == 2));
        let t1 = torus2d(1, 5);
        assert_eq!(t1.edge_count(), 5); // single cycle
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(4).unwrap();
        assert_eq!(g.vertex_count(), 16);
        assert!(g.vertices().all(|v| g.degree(v) == 4));
        assert_eq!(diameter::diameter(&g), Some(4));
        assert!(hypercube(25).is_err());
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(gnp(10, 0.0, &mut rng).unwrap().edge_count(), 0);
        assert_eq!(gnp(10, 1.0, &mut rng).unwrap().edge_count(), 45);
        assert!(gnp(10, 1.5, &mut rng).is_err());
        assert!(gnp(10, f64::NAN, &mut rng).is_err());
    }

    #[test]
    fn gnp_edge_count_near_expectation() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 400;
        let p = 0.05;
        let g = gnp(n, p, &mut rng).unwrap();
        let expected = (n * (n - 1) / 2) as f64 * p;
        let got = g.edge_count() as f64;
        assert!(
            (got - expected).abs() < 5.0 * expected.sqrt(),
            "edge count {got} too far from expectation {expected}"
        );
    }

    #[test]
    fn edge_slot_mapping_is_bijective() {
        let n = 7;
        let mut seen = std::collections::HashSet::new();
        for slot in 0..(n * (n - 1) / 2) {
            let (u, v) = edge_slot_to_pair(n, slot);
            assert!(u < v && v < n);
            assert!(seen.insert((u, v)));
        }
    }

    #[test]
    fn random_tree_is_tree() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in [1usize, 2, 3, 10, 100] {
            let g = random_tree(n, &mut rng);
            assert_eq!(g.vertex_count(), n);
            assert_eq!(g.edge_count(), n.saturating_sub(1));
            assert!(components::is_connected(&g), "tree on {n} disconnected");
        }
    }

    #[test]
    fn random_regular_is_regular() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = random_regular(50, 4, &mut rng).unwrap();
        assert!(g.vertices().all(|v| g.degree(v) == 4));
        assert!(random_regular(5, 3, &mut rng).is_err()); // odd n*d
        assert!(random_regular(4, 4, &mut rng).is_err()); // d >= n
        assert_eq!(random_regular(5, 0, &mut rng).unwrap().edge_count(), 0);
    }

    #[test]
    fn barabasi_albert_counts() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = barabasi_albert(100, 3, &mut rng).unwrap();
        assert_eq!(g.vertex_count(), 100);
        assert!(components::is_connected(&g));
        // 3 seed-clique edges + 3 per each of the 97 added vertices.
        assert_eq!(g.edge_count(), 3 + 97 * 3);
        assert!(barabasi_albert(5, 0, &mut rng).is_err());
        assert!(barabasi_albert(3, 3, &mut rng).is_err());
    }

    #[test]
    fn barabasi_albert_attach_one_is_tree() {
        let mut rng = StdRng::seed_from_u64(13);
        let g = barabasi_albert(50, 1, &mut rng).unwrap();
        assert!(components::is_connected(&g));
        assert_eq!(g.edge_count(), 49);
    }

    #[test]
    fn caveman_structure() {
        let g = caveman(4, 5).unwrap();
        assert_eq!(g.vertex_count(), 20);
        assert!(components::is_connected(&g));
        // 4 cliques of C(5,2)=10 edges plus 4 ring edges.
        assert_eq!(g.edge_count(), 4 * 10 + 4);
        assert!(caveman(0, 3).is_err());
    }

    #[test]
    fn caveman_single_cave_is_clique() {
        let g = caveman(1, 4).unwrap();
        assert_eq!(g.edge_count(), 6);
    }

    #[test]
    fn caveman_two_caves() {
        let g = caveman(2, 3).unwrap();
        assert!(components::is_connected(&g));
        assert_eq!(g.vertex_count(), 6);
    }
}

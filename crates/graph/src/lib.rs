//! Unweighted-graph substrate for the `netdecomp` workspace.
//!
//! This crate provides everything the decomposition algorithms need from a
//! graph library, built from scratch so the whole stack is dependency-light
//! and auditable:
//!
//! - [`Graph`]: an immutable, compact CSR (compressed sparse row) simple
//!   undirected graph, constructed through [`GraphBuilder`].
//! - [`generators`]: thirteen synthetic graph families (Erdős–Rényi,
//!   random-regular, grids, tori, hypercubes, trees, Barabási–Albert,
//!   caveman clusters, and the classical fixed topologies).
//! - [`bfs`]: single-source / multi-source / subset-restricted breadth-first
//!   search, the distance oracle used throughout the workspace.
//! - [`components`]: connected components, also restricted to vertex subsets.
//! - [`diameter`]: exact eccentricities and diameters (global and induced),
//!   plus a two-sweep lower-bound heuristic.
//! - [`contraction`]: quotient (super-) graphs induced by a vertex partition,
//!   used to color the cluster graph `G(P)` of a decomposition.
//! - [`induced`]: induced-subgraph extraction with id mapping (the
//!   "collect the cluster topology at a leader" primitive).
//! - [`power`]: graph powers `G^r` for neighborhood-cover constructions.
//! - [`coloring`]: greedy proper coloring (used on supergraphs).
//! - [`VertexSet`]: a dense bitset over vertex ids, used for "alive" sets.
//! - [`io`]: a tiny self-describing edge-list text format.
//!
//! # Example
//!
//! ```
//! use netdecomp_graph::{generators, bfs};
//!
//! let g = generators::grid2d(4, 5);
//! assert_eq!(g.vertex_count(), 20);
//! let dist = bfs::distances(&g, 0);
//! // Manhattan distance from corner (0,0) to corner (3,4):
//! assert_eq!(dist[19], Some(3 + 4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod csr;
mod error;
mod subset;

pub mod bfs;
pub mod coloring;
pub mod components;
pub mod contraction;
pub mod diameter;
pub mod generators;
pub mod induced;
pub mod io;
pub mod partition;
pub mod power;
pub mod properties;

pub use builder::GraphBuilder;
pub use csr::{Graph, NeighborIter, VertexId};
pub use error::GraphError;
pub use partition::Partition;
pub use subset::VertexSet;

//! Exact and approximate diameters, global and induced.
//!
//! The *strong diameter* of a cluster `C` is the diameter of the induced
//! subgraph `G(C)`; the *weak diameter* measures the same pairs through the
//! whole graph `G`. These are the two quantities the paper contrasts, and
//! [`strong_diameter`] / [`weak_diameter`] compute them exactly.

use crate::{bfs, Graph, VertexId, VertexSet};

/// Exact diameter of the graph.
///
/// Returns `None` if the graph is disconnected or empty (the diameter is
/// infinite/undefined); `Some(0)` for a single vertex.
///
/// Runs one BFS per vertex: `O(n·(n+m))`.
#[must_use]
pub fn diameter(g: &Graph) -> Option<usize> {
    if g.is_empty() {
        return None;
    }
    let mut best = 0;
    for v in g.vertices() {
        let d = bfs::distances(g, v);
        let mut ecc = 0;
        for dv in &d {
            match dv {
                Some(x) => ecc = ecc.max(*x),
                None => return None, // disconnected
            }
        }
        best = best.max(ecc);
    }
    Some(best)
}

/// Strong diameter of `cluster`: the maximum pairwise distance *inside the
/// induced subgraph* `G(cluster)`.
///
/// Returns `None` if the induced subgraph is disconnected (infinite strong
/// diameter) and `Some(0)` for singleton or empty clusters.
///
/// # Panics
///
/// Panics if `cluster`'s universe differs from the graph's vertex count.
#[must_use]
pub fn strong_diameter(g: &Graph, cluster: &VertexSet) -> Option<usize> {
    if cluster.is_empty() {
        return Some(0);
    }
    let mut best = 0;
    for v in cluster.iter() {
        let d = bfs::distances_restricted(g, v, cluster);
        for u in cluster.iter() {
            match d[u] {
                Some(x) => best = best.max(x),
                None => return None,
            }
        }
    }
    Some(best)
}

/// Weak diameter of `cluster`: the maximum pairwise distance measured in the
/// *whole* graph `G`.
///
/// Returns `None` if some pair of cluster vertices is disconnected in `G`.
///
/// # Panics
///
/// Panics if `cluster`'s universe differs from the graph's vertex count.
#[must_use]
pub fn weak_diameter(g: &Graph, cluster: &VertexSet) -> Option<usize> {
    assert_eq!(
        cluster.universe(),
        g.vertex_count(),
        "cluster universe must equal the vertex count"
    );
    if cluster.is_empty() {
        return Some(0);
    }
    let mut best = 0;
    for v in cluster.iter() {
        let d = bfs::distances(g, v);
        for u in cluster.iter() {
            match d[u] {
                Some(x) => best = best.max(x),
                None => return None,
            }
        }
    }
    Some(best)
}

/// Two-sweep heuristic lower bound on the diameter: BFS from `start`, then
/// BFS from the farthest vertex found. Exact on trees; a lower bound in
/// general. Returns `None` on an empty graph.
///
/// # Panics
///
/// Panics if `start` is out of range on a non-empty graph.
#[must_use]
pub fn two_sweep_lower_bound(g: &Graph, start: VertexId) -> Option<usize> {
    if g.is_empty() {
        return None;
    }
    let d1 = bfs::distances(g, start);
    let far = d1
        .iter()
        .enumerate()
        .filter_map(|(v, d)| d.map(|x| (x, v)))
        .max()
        .map(|(_, v)| v)?;
    Some(bfs::eccentricity(g, far))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn diameter_of_path_and_cycle() {
        assert_eq!(diameter(&generators::path(6)), Some(5));
        assert_eq!(diameter(&generators::cycle(6)), Some(3));
        assert_eq!(diameter(&generators::cycle(7)), Some(3));
        assert_eq!(diameter(&generators::complete(5)), Some(1));
    }

    #[test]
    fn diameter_of_disconnected_is_none() {
        assert_eq!(diameter(&Graph::empty(2)), None);
        assert_eq!(diameter(&Graph::empty(0)), None);
        assert_eq!(diameter(&Graph::empty(1)), Some(0));
    }

    #[test]
    fn strong_vs_weak_diameter_gap() {
        // Cycle of 6; cluster {0, 1, 2} has strong diameter 2,
        // cluster {0, 2, 4} is independent: strong = None, weak = 2.
        let g = generators::cycle(6);
        let contiguous: VertexSet = {
            let mut s = VertexSet::new(6);
            s.extend([0, 1, 2]);
            s
        };
        assert_eq!(strong_diameter(&g, &contiguous), Some(2));
        assert_eq!(weak_diameter(&g, &contiguous), Some(2));

        let spread: VertexSet = {
            let mut s = VertexSet::new(6);
            s.extend([0, 2, 4]);
            s
        };
        assert_eq!(strong_diameter(&g, &spread), None);
        assert_eq!(weak_diameter(&g, &spread), Some(2));
    }

    #[test]
    fn weak_diameter_through_outside_vertices() {
        // Star: leaves {1, 2} are at distance 2 via the hub 0, but the
        // induced subgraph on the leaves has no edges.
        let g = generators::star(4);
        let mut leaves = VertexSet::new(4);
        leaves.extend([1, 2]);
        assert_eq!(weak_diameter(&g, &leaves), Some(2));
        assert_eq!(strong_diameter(&g, &leaves), None);
    }

    #[test]
    fn singleton_and_empty_clusters() {
        let g = generators::path(3);
        let mut single = VertexSet::new(3);
        single.insert(1);
        assert_eq!(strong_diameter(&g, &single), Some(0));
        assert_eq!(weak_diameter(&g, &single), Some(0));
        let empty = VertexSet::new(3);
        assert_eq!(strong_diameter(&g, &empty), Some(0));
        assert_eq!(weak_diameter(&g, &empty), Some(0));
    }

    #[test]
    fn two_sweep_exact_on_paths() {
        let g = generators::path(9);
        assert_eq!(two_sweep_lower_bound(&g, 4), Some(8));
    }

    #[test]
    fn two_sweep_is_lower_bound_on_grid() {
        let g = generators::grid2d(5, 7);
        let exact = diameter(&g).unwrap();
        let lb = two_sweep_lower_bound(&g, 12).unwrap();
        assert!(lb <= exact);
        assert_eq!(exact, 4 + 6);
    }
}

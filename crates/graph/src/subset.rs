//! Dense bitset over vertex ids.

use std::fmt;

use crate::VertexId;

/// A dense set of vertices backed by a bit vector.
///
/// The decomposition algorithms carve vertices out of the graph phase by
/// phase; the set of still-alive vertices is represented by a `VertexSet`.
///
/// # Example
///
/// ```
/// use netdecomp_graph::VertexSet;
///
/// let mut s = VertexSet::full(5);
/// s.remove(2);
/// assert!(s.contains(0) && !s.contains(2));
/// assert_eq!(s.len(), 4);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 1, 3, 4]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct VertexSet {
    words: Vec<u64>,
    universe: usize,
    len: usize,
}

impl VertexSet {
    /// Creates an empty set over the universe `0..universe`.
    #[must_use]
    pub fn new(universe: usize) -> Self {
        VertexSet {
            words: vec![0; universe.div_ceil(64)],
            universe,
            len: 0,
        }
    }

    /// Creates the full set `{0, …, universe−1}`.
    #[must_use]
    pub fn full(universe: usize) -> Self {
        let mut s = VertexSet::new(universe);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        if !universe.is_multiple_of(64) {
            if let Some(last) = s.words.last_mut() {
                *last = (1u64 << (universe % 64)) - 1;
            }
        }
        s.len = universe;
        s
    }

    /// Size of the universe this set draws from.
    #[must_use]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the set has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the universe.
    #[must_use]
    pub fn contains(&self, v: VertexId) -> bool {
        assert!(
            v < self.universe,
            "vertex {v} outside universe {}",
            self.universe
        );
        self.words[v / 64] >> (v % 64) & 1 == 1
    }

    /// Inserts `v`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the universe.
    pub fn insert(&mut self, v: VertexId) -> bool {
        assert!(
            v < self.universe,
            "vertex {v} outside universe {}",
            self.universe
        );
        let word = &mut self.words[v / 64];
        let mask = 1u64 << (v % 64);
        if *word & mask == 0 {
            *word |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Removes `v`; returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the universe.
    pub fn remove(&mut self, v: VertexId) -> bool {
        assert!(
            v < self.universe,
            "vertex {v} outside universe {}",
            self.universe
        );
        let word = &mut self.words[v / 64];
        let mask = 1u64 << (v % 64);
        if *word & mask != 0 {
            *word &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Removes all members.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
        self.len = 0;
    }

    /// Iterator over members in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl fmt::Debug for VertexSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<VertexId> for VertexSet {
    /// Collects vertices into a set whose universe is one past the maximum
    /// element (empty input yields an empty universe).
    fn from_iter<I: IntoIterator<Item = VertexId>>(iter: I) -> Self {
        let items: Vec<VertexId> = iter.into_iter().collect();
        let universe = items.iter().map(|&v| v + 1).max().unwrap_or(0);
        let mut s = VertexSet::new(universe);
        for v in items {
            s.insert(v);
        }
        s
    }
}

impl Extend<VertexId> for VertexSet {
    fn extend<I: IntoIterator<Item = VertexId>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl<'a> IntoIterator for &'a VertexSet {
    type Item = VertexId;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over the members of a [`VertexSet`]; see [`VertexSet::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    set: &'a VertexSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = VertexId;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains_len() {
        let mut s = VertexSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(0));
        assert_eq!(s.len(), 2);
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn full_set_has_all_members() {
        let s = VertexSet::full(67);
        assert_eq!(s.len(), 67);
        assert!(s.contains(66));
        assert_eq!(s.iter().count(), 67);
        assert_eq!(s.iter().last(), Some(66));
    }

    #[test]
    fn full_set_word_aligned_universe() {
        let s = VertexSet::full(128);
        assert_eq!(s.len(), 128);
        assert_eq!(s.iter().count(), 128);
    }

    #[test]
    fn iter_is_sorted() {
        let mut s = VertexSet::new(200);
        for v in [150, 3, 77, 64, 63] {
            s.insert(v);
        }
        let got: Vec<_> = s.iter().collect();
        assert_eq!(got, vec![3, 63, 64, 77, 150]);
    }

    #[test]
    fn clear_empties_the_set() {
        let mut s = VertexSet::full(10);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut s: VertexSet = [5, 1, 5].into_iter().collect();
        assert_eq!(s.universe(), 6);
        assert_eq!(s.len(), 2);
        s.extend([0, 2]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 1, 2, 5]);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn contains_panics_outside_universe() {
        let s = VertexSet::new(4);
        let _ = s.contains(4);
    }

    #[test]
    fn debug_lists_members() {
        let s: VertexSet = [1, 3].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{1, 3}");
    }

    #[test]
    fn empty_universe_iterates_nothing() {
        let s = VertexSet::new(0);
        assert_eq!(s.iter().count(), 0);
    }
}

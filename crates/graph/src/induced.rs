//! Induced subgraph extraction with vertex re-mapping.
//!
//! The "naive algorithm" of the paper's introduction has each cluster
//! leader collect its cluster's topology and solve locally; extracting
//! `G(C)` as a standalone [`Graph`] is that collection step.

use crate::{Graph, GraphBuilder, VertexId, VertexSet};

/// An induced subgraph together with the mapping between old and new ids.
#[derive(Debug, Clone)]
pub struct InducedSubgraph {
    graph: Graph,
    /// `original[i]` is the original id of new vertex `i`.
    original: Vec<VertexId>,
    /// `local[v]` is the new id of original vertex `v` (`None` if absent).
    local: Vec<Option<VertexId>>,
}

impl InducedSubgraph {
    /// The extracted subgraph over dense ids `0..members.len()`.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Original id of local vertex `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn original_id(&self, i: VertexId) -> VertexId {
        self.original[i]
    }

    /// Local id of original vertex `v`, if it was included.
    #[must_use]
    pub fn local_id(&self, v: VertexId) -> Option<VertexId> {
        self.local.get(v).copied().flatten()
    }

    /// All original ids, indexed by local id.
    #[must_use]
    pub fn originals(&self) -> &[VertexId] {
        &self.original
    }
}

/// Extracts the subgraph induced by `members`.
///
/// Local vertex ids follow the members' increasing original order.
///
/// # Panics
///
/// Panics if `members`' universe differs from the graph's vertex count.
///
/// # Example
///
/// ```
/// use netdecomp_graph::{generators, induced, VertexSet};
///
/// let g = generators::cycle(6);
/// let mut s = VertexSet::new(6);
/// s.extend([1, 2, 3]);
/// let sub = induced::extract(&g, &s);
/// assert_eq!(sub.graph().vertex_count(), 3);
/// assert_eq!(sub.graph().edge_count(), 2); // 1-2, 2-3
/// assert_eq!(sub.original_id(0), 1);
/// assert_eq!(sub.local_id(3), Some(2));
/// assert_eq!(sub.local_id(5), None);
/// ```
#[must_use]
pub fn extract(g: &Graph, members: &VertexSet) -> InducedSubgraph {
    assert_eq!(
        members.universe(),
        g.vertex_count(),
        "members universe must equal the vertex count"
    );
    let original: Vec<VertexId> = members.iter().collect();
    let mut local: Vec<Option<VertexId>> = vec![None; g.vertex_count()];
    for (i, &v) in original.iter().enumerate() {
        local[v] = Some(i);
    }
    let mut b = GraphBuilder::new(original.len());
    for (i, &v) in original.iter().enumerate() {
        for &u in g.neighbors(v) {
            if let Some(j) = local[u] {
                if i < j {
                    b.add_edge(i, j).expect("dense ids in range");
                }
            }
        }
    }
    InducedSubgraph {
        graph: b.build(),
        original,
        local,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{diameter, generators};

    #[test]
    fn extract_preserves_internal_edges_only() {
        let g = generators::complete(5);
        let mut s = VertexSet::new(5);
        s.extend([0, 2, 4]);
        let sub = extract(&g, &s);
        assert_eq!(sub.graph().vertex_count(), 3);
        assert_eq!(sub.graph().edge_count(), 3); // K3
        assert_eq!(sub.originals(), &[0, 2, 4]);
    }

    #[test]
    fn extract_empty_set() {
        let g = generators::path(4);
        let sub = extract(&g, &VertexSet::new(4));
        assert!(sub.graph().is_empty());
    }

    #[test]
    fn induced_diameter_matches_restricted_computation() {
        let g = generators::cycle(8);
        let mut s = VertexSet::new(8);
        s.extend([0, 1, 2, 3]);
        let sub = extract(&g, &s);
        // Arc of 4 vertices: diameter 3.
        assert_eq!(diameter::diameter(sub.graph()), Some(3));
        assert_eq!(diameter::strong_diameter(&g, &s), Some(3));
    }

    #[test]
    fn mapping_round_trips() {
        let g = generators::grid2d(3, 3);
        let mut s = VertexSet::new(9);
        s.extend([8, 0, 4]);
        let sub = extract(&g, &s);
        for i in 0..sub.graph().vertex_count() {
            let orig = sub.original_id(i);
            assert_eq!(sub.local_id(orig), Some(i));
        }
    }

    #[test]
    fn full_set_is_isomorphic_copy() {
        let g = generators::grid2d(4, 4);
        let sub = extract(&g, &VertexSet::full(16));
        assert_eq!(sub.graph(), &g);
    }
}

//! Breadth-first search: the distance oracle of the workspace.
//!
//! All distances are hop counts in the unweighted graph. Functions come in
//! two flavors: over the whole graph, and *restricted* to a [`VertexSet`] of
//! alive vertices — the latter computes distances in the induced subgraph
//! `G(W)` without materializing it, which is exactly the notion of distance
//! the paper's per-phase graphs `G_t` use.

use std::collections::VecDeque;

use crate::{Graph, VertexId, VertexSet};

/// Distances from `source` to every vertex; `None` for unreachable vertices.
///
/// # Panics
///
/// Panics if `source` is out of range.
///
/// # Example
///
/// ```
/// use netdecomp_graph::{generators, bfs};
///
/// let path = generators::path(4);
/// assert_eq!(bfs::distances(&path, 0), vec![Some(0), Some(1), Some(2), Some(3)]);
/// ```
#[must_use]
pub fn distances(g: &Graph, source: VertexId) -> Vec<Option<usize>> {
    assert!(source < g.vertex_count(), "source {source} out of range");
    let mut dist = vec![None; g.vertex_count()];
    let mut queue = VecDeque::new();
    dist[source] = Some(0);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u].expect("queued vertices have distances");
        for &v in g.neighbors(u) {
            if dist[v].is_none() {
                dist[v] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Distances from `source` within the subgraph induced by `alive`.
///
/// Vertices outside `alive` are treated as removed: they are never visited
/// and never relay paths. Returns `None` for vertices not reachable inside
/// `alive` (including all vertices outside `alive`).
///
/// # Panics
///
/// Panics if `source` is out of range, if `alive`'s universe differs from the
/// graph's vertex count, or if `source` is not in `alive`.
#[must_use]
pub fn distances_restricted(g: &Graph, source: VertexId, alive: &VertexSet) -> Vec<Option<usize>> {
    assert_eq!(
        alive.universe(),
        g.vertex_count(),
        "alive-set universe must equal the vertex count"
    );
    assert!(alive.contains(source), "source {source} must be alive");
    let mut dist = vec![None; g.vertex_count()];
    let mut queue = VecDeque::new();
    dist[source] = Some(0);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u].expect("queued vertices have distances");
        for &v in g.neighbors(u) {
            if alive.contains(v) && dist[v].is_none() {
                dist[v] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Multi-source BFS: distance from the nearest source, plus that source's id.
///
/// Returns `(distance, source)` per vertex; ties between sources at equal
/// distance are broken toward the source that entered the queue earlier
/// (i.e. the earliest in `sources` order).
///
/// # Panics
///
/// Panics if any source is out of range.
#[must_use]
pub fn multi_source_distances(g: &Graph, sources: &[VertexId]) -> Vec<Option<(usize, VertexId)>> {
    let mut dist: Vec<Option<(usize, VertexId)>> = vec![None; g.vertex_count()];
    let mut queue = VecDeque::new();
    for &s in sources {
        assert!(s < g.vertex_count(), "source {s} out of range");
        if dist[s].is_none() {
            dist[s] = Some((0, s));
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let (du, su) = dist[u].expect("queued vertices have distances");
        for &v in g.neighbors(u) {
            if dist[v].is_none() {
                dist[v] = Some((du + 1, su));
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Vertices within distance `radius` of `source` in the subgraph induced by
/// `alive`, reported as `(vertex, distance)` pairs in BFS order.
///
/// This is the "broadcast to the `R_v`-neighborhood" primitive of the paper.
///
/// # Panics
///
/// Same conditions as [`distances_restricted`].
#[must_use]
pub fn ball_restricted(
    g: &Graph,
    source: VertexId,
    radius: usize,
    alive: &VertexSet,
) -> Vec<(VertexId, usize)> {
    assert_eq!(
        alive.universe(),
        g.vertex_count(),
        "alive-set universe must equal the vertex count"
    );
    assert!(alive.contains(source), "source {source} must be alive");
    let mut seen = VertexSet::new(g.vertex_count());
    let mut out = Vec::new();
    let mut queue = VecDeque::new();
    seen.insert(source);
    queue.push_back((source, 0usize));
    while let Some((u, du)) = queue.pop_front() {
        out.push((u, du));
        if du == radius {
            continue;
        }
        for &v in g.neighbors(u) {
            if alive.contains(v) && seen.insert(v) {
                queue.push_back((v, du + 1));
            }
        }
    }
    out
}

/// Eccentricity of `source` within its connected component.
///
/// # Panics
///
/// Panics if `source` is out of range.
#[must_use]
pub fn eccentricity(g: &Graph, source: VertexId) -> usize {
    distances(g, source)
        .into_iter()
        .flatten()
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn distances_on_cycle() {
        let g = generators::cycle(6);
        let d = distances(&g, 0);
        assert_eq!(
            d,
            vec![Some(0), Some(1), Some(2), Some(3), Some(2), Some(1)]
        );
    }

    #[test]
    fn unreachable_vertices_are_none() {
        let g = Graph::from_edges(4, &[(0, 1)]).unwrap();
        let d = distances(&g, 0);
        assert_eq!(d[2], None);
        assert_eq!(d[3], None);
    }

    #[test]
    fn restricted_distances_route_around_dead_vertices() {
        // Cycle 0-1-2-3-4-5-0 with vertex 1 removed: 0 to 2 must go the long way.
        let g = generators::cycle(6);
        let mut alive = VertexSet::full(6);
        alive.remove(1);
        let d = distances_restricted(&g, 0, &alive);
        assert_eq!(d[2], Some(4));
        assert_eq!(d[1], None);
    }

    #[test]
    fn restricted_distances_can_disconnect() {
        let g = generators::path(5);
        let mut alive = VertexSet::full(5);
        alive.remove(2);
        let d = distances_restricted(&g, 0, &alive);
        assert_eq!(d[1], Some(1));
        assert_eq!(d[3], None);
        assert_eq!(d[4], None);
    }

    #[test]
    fn multi_source_assigns_nearest_source() {
        let g = generators::path(7);
        let d = multi_source_distances(&g, &[0, 6]);
        assert_eq!(d[1], Some((1, 0)));
        assert_eq!(d[5], Some((1, 6)));
        assert_eq!(d[3], Some((3, 0))); // tie broken toward earlier source
    }

    #[test]
    fn multi_source_empty_sources_all_none() {
        let g = generators::path(3);
        assert!(multi_source_distances(&g, &[]).iter().all(Option::is_none));
    }

    #[test]
    fn ball_respects_radius_and_alive() {
        let g = generators::path(6);
        let mut alive = VertexSet::full(6);
        alive.remove(4);
        let ball = ball_restricted(&g, 2, 2, &alive);
        let verts: Vec<_> = ball.iter().map(|&(v, _)| v).collect();
        assert!(verts.contains(&0) && verts.contains(&3));
        assert!(!verts.contains(&4) && !verts.contains(&5));
        for &(v, d) in &ball {
            assert!(d <= 2, "vertex {v} at distance {d} > radius");
        }
    }

    #[test]
    fn ball_radius_zero_is_singleton() {
        let g = generators::cycle(4);
        let alive = VertexSet::full(4);
        assert_eq!(ball_restricted(&g, 1, 0, &alive), vec![(1, 0)]);
    }

    #[test]
    fn eccentricity_of_path_endpoint() {
        let g = generators::path(5);
        assert_eq!(eccentricity(&g, 0), 4);
        assert_eq!(eccentricity(&g, 2), 2);
    }

    #[test]
    fn eccentricity_isolated_vertex_is_zero() {
        let g = Graph::empty(3);
        assert_eq!(eccentricity(&g, 1), 0);
    }
}

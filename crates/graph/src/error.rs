//! Error type for graph construction and parsing.

use std::error::Error;
use std::fmt;

/// Errors produced by graph construction, parsing, and partition handling.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint was not in `0..n`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: usize,
        /// The number of vertices of the graph.
        n: usize,
    },
    /// An edge connected a vertex to itself; simple graphs forbid this.
    SelfLoop {
        /// The vertex with the loop.
        vertex: usize,
    },
    /// A parameter of a generator was invalid (e.g. odd `n·d` for a random
    /// regular graph, probability outside `[0, 1]`).
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// Text input could not be parsed as a graph.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// A partition did not cover the graph or was otherwise malformed.
    InvalidPartition {
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(
                    f,
                    "vertex {vertex} out of range for graph with {n} vertices"
                )
            }
            GraphError::SelfLoop { vertex } => {
                write!(
                    f,
                    "self-loop at vertex {vertex} not allowed in a simple graph"
                )
            }
            GraphError::InvalidParameter { reason } => {
                write!(f, "invalid generator parameter: {reason}")
            }
            GraphError::Parse { line, reason } => {
                write!(f, "parse error at line {line}: {reason}")
            }
            GraphError::InvalidPartition { reason } => {
                write!(f, "invalid partition: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::VertexOutOfRange { vertex: 9, n: 4 };
        assert_eq!(
            e.to_string(),
            "vertex 9 out of range for graph with 4 vertices"
        );
        let e = GraphError::SelfLoop { vertex: 3 };
        assert!(e.to_string().contains("self-loop at vertex 3"));
        let e = GraphError::InvalidParameter {
            reason: "p must lie in [0, 1]".into(),
        };
        assert!(e.to_string().contains("p must lie in [0, 1]"));
        let e = GraphError::Parse {
            line: 2,
            reason: "expected two integers".into(),
        };
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}

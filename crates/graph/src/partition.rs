//! Vertex partitions: assignments of vertices to disjoint clusters.
//!
//! A [`Partition`] is the combinatorial object underlying a network
//! decomposition: each vertex belongs to at most one cluster. Partitions are
//! *partial* while an algorithm is still carving; a finished decomposition
//! requires [`Partition::is_complete`].

use crate::{GraphError, VertexId, VertexSet};

/// A partition of (a subset of) the vertices `0..n` into disjoint clusters.
///
/// Cluster ids are dense indices `0..cluster_count()`.
///
/// # Example
///
/// ```
/// use netdecomp_graph::Partition;
///
/// let mut p = Partition::new(4);
/// let a = p.push_cluster(&[0, 1]);
/// let b = p.push_cluster(&[3]);
/// assert_eq!(p.cluster_of(0), Some(a));
/// assert_eq!(p.cluster_of(2), None);
/// assert_eq!(p.cluster_of(3), Some(b));
/// assert!(!p.is_complete());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    assignment: Vec<Option<usize>>,
    cluster_count: usize,
}

impl Partition {
    /// Creates an empty partition over `n` vertices (no clusters).
    #[must_use]
    pub fn new(n: usize) -> Self {
        Partition {
            assignment: vec![None; n],
            cluster_count: 0,
        }
    }

    /// The partition of `0..n` into `n` singleton clusters, cluster id = id.
    #[must_use]
    pub fn singletons(n: usize) -> Self {
        Partition {
            assignment: (0..n).map(Some).collect(),
            cluster_count: n,
        }
    }

    /// Builds a partition from a raw assignment vector.
    ///
    /// Cluster ids are compacted to `0..count` preserving first-appearance
    /// order.
    pub fn from_assignment(raw: Vec<Option<usize>>) -> Self {
        let mut remap: Vec<Option<usize>> = Vec::new();
        let mut assignment = vec![None; raw.len()];
        let mut next = 0;
        for (v, slot) in raw.iter().enumerate() {
            if let Some(c) = slot {
                if *c >= remap.len() {
                    remap.resize(c + 1, None);
                }
                let dense = *remap[*c].get_or_insert_with(|| {
                    let id = next;
                    next += 1;
                    id
                });
                assignment[v] = Some(dense);
            }
        }
        Partition {
            assignment,
            cluster_count: next,
        }
    }

    /// Number of vertices of the underlying graph.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.assignment.len()
    }

    /// Number of clusters.
    #[must_use]
    pub fn cluster_count(&self) -> usize {
        self.cluster_count
    }

    /// Cluster id of `v`, or `None` if unassigned.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn cluster_of(&self, v: VertexId) -> Option<usize> {
        self.assignment[v]
    }

    /// Appends a new cluster containing `members` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a member is out of range or already assigned — clusters are
    /// disjoint by construction.
    pub fn push_cluster(&mut self, members: &[VertexId]) -> usize {
        let id = self.cluster_count;
        for &v in members {
            assert!(
                self.assignment[v].is_none(),
                "vertex {v} already assigned to cluster {:?}",
                self.assignment[v]
            );
            self.assignment[v] = Some(id);
        }
        self.cluster_count += 1;
        id
    }

    /// Number of assigned vertices.
    #[must_use]
    pub fn assigned_count(&self) -> usize {
        self.assignment.iter().filter(|a| a.is_some()).count()
    }

    /// `true` when every vertex is assigned to some cluster.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.assignment.iter().all(Option::is_some)
    }

    /// The vertices left unassigned.
    #[must_use]
    pub fn unassigned(&self) -> Vec<VertexId> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(v, a)| a.is_none().then_some(v))
            .collect()
    }

    /// Members of every cluster, indexed by cluster id, each sorted.
    #[must_use]
    pub fn clusters(&self) -> Vec<Vec<VertexId>> {
        let mut out = vec![Vec::new(); self.cluster_count];
        for (v, a) in self.assignment.iter().enumerate() {
            if let Some(c) = a {
                out[*c].push(v);
            }
        }
        out
    }

    /// Members of cluster `c` as a [`VertexSet`].
    ///
    /// # Panics
    ///
    /// Panics if `c >= cluster_count()`.
    #[must_use]
    pub fn cluster_set(&self, c: usize) -> VertexSet {
        assert!(c < self.cluster_count, "cluster {c} out of range");
        let mut s = VertexSet::new(self.assignment.len());
        for (v, a) in self.assignment.iter().enumerate() {
            if *a == Some(c) {
                s.insert(v);
            }
        }
        s
    }

    /// The raw assignment slice (`assignment[v]` = cluster of `v`).
    #[must_use]
    pub fn assignment(&self) -> &[Option<usize>] {
        &self.assignment
    }

    /// Checks that the partition covers all vertices.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidPartition`] naming the first uncovered vertex.
    pub fn require_complete(&self) -> Result<(), GraphError> {
        match self.assignment.iter().position(Option::is_none) {
            None => Ok(()),
            Some(v) => Err(GraphError::InvalidPartition {
                reason: format!("vertex {v} is not assigned to any cluster"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query_clusters() {
        let mut p = Partition::new(5);
        let c0 = p.push_cluster(&[0, 2]);
        let c1 = p.push_cluster(&[1, 3, 4]);
        assert_eq!(c0, 0);
        assert_eq!(c1, 1);
        assert_eq!(p.cluster_count(), 2);
        assert!(p.is_complete());
        assert_eq!(p.clusters(), vec![vec![0, 2], vec![1, 3, 4]]);
        assert_eq!(p.cluster_set(1).iter().collect::<Vec<_>>(), vec![1, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "already assigned")]
    fn double_assignment_panics() {
        let mut p = Partition::new(3);
        p.push_cluster(&[0]);
        p.push_cluster(&[0]);
    }

    #[test]
    fn from_assignment_compacts_labels() {
        let p = Partition::from_assignment(vec![Some(7), None, Some(3), Some(7)]);
        assert_eq!(p.cluster_count(), 2);
        assert_eq!(p.cluster_of(0), Some(0));
        assert_eq!(p.cluster_of(2), Some(1));
        assert_eq!(p.cluster_of(3), Some(0));
        assert_eq!(p.unassigned(), vec![1]);
    }

    #[test]
    fn singletons_partition() {
        let p = Partition::singletons(4);
        assert_eq!(p.cluster_count(), 4);
        assert!(p.is_complete());
        assert_eq!(p.cluster_of(3), Some(3));
    }

    #[test]
    fn require_complete_reports_first_gap() {
        let mut p = Partition::new(3);
        p.push_cluster(&[0, 2]);
        let err = p.require_complete().unwrap_err();
        assert!(err.to_string().contains("vertex 1"));
        p.push_cluster(&[1]);
        assert!(p.require_complete().is_ok());
    }

    #[test]
    fn assigned_count_tracks_pushes() {
        let mut p = Partition::new(10);
        assert_eq!(p.assigned_count(), 0);
        p.push_cluster(&[4, 5, 6]);
        assert_eq!(p.assigned_count(), 3);
    }

    #[test]
    fn empty_partition_over_zero_vertices() {
        let p = Partition::new(0);
        assert!(p.is_complete());
        assert_eq!(p.cluster_count(), 0);
    }
}

//! Incremental construction of [`Graph`] values.

use crate::{Graph, GraphError, VertexId};

/// Incremental builder for [`Graph`].
///
/// Collects edges (deduplicating and normalizing orientation), then produces
/// the immutable CSR form with [`GraphBuilder::build`].
///
/// # Example
///
/// ```
/// use netdecomp_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 2)?;
/// b.add_edge(2, 1)?; // duplicate, ignored
/// let g = b.build();
/// assert_eq!(g.edge_count(), 2);
/// # Ok::<(), netdecomp_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on vertices `0..n`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Creates a builder with capacity for `m` edges.
    #[must_use]
    pub fn with_edge_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Number of vertices this builder was created with.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Records the undirected edge `{u, v}`.
    ///
    /// Duplicates are allowed here and collapsed by [`GraphBuilder::build`].
    ///
    /// # Errors
    ///
    /// [`GraphError::VertexOutOfRange`] if an endpoint is `>= n`;
    /// [`GraphError::SelfLoop`] if `u == v`.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<&mut Self, GraphError> {
        if u >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: u,
                n: self.n,
            });
        }
        if v >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: v,
                n: self.n,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        self.edges.push(if u < v { (u, v) } else { (v, u) });
        Ok(self)
    }

    /// Consumes the builder and produces the immutable CSR graph.
    #[must_use]
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();

        let mut degrees = vec![0usize; self.n];
        for &(u, v) in &self.edges {
            degrees[u] += 1;
            degrees[v] += 1;
        }
        let mut offsets = Vec::with_capacity(self.n + 1);
        offsets.push(0usize);
        for v in 0..self.n {
            offsets.push(offsets[v] + degrees[v]);
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as VertexId; self.edges.len() * 2];
        for &(u, v) in &self.edges {
            targets[cursor[u]] = v;
            cursor[u] += 1;
            targets[cursor[v]] = u;
            cursor[v] += 1;
        }
        // Each adjacency run was filled in increasing order of the opposite
        // endpoint for the `u < v` direction, but the `v > u` direction
        // interleaves; sort each run to restore the CSR invariant.
        for v in 0..self.n {
            targets[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Graph::from_csr_parts(offsets, targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_normalizes_orientation_and_dedups() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(3, 0).unwrap();
        b.add_edge(0, 3).unwrap();
        b.add_edge(1, 2).unwrap();
        let g = b.build();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.neighbors(0), &[3]);
        assert_eq!(g.neighbors(3), &[0]);
    }

    #[test]
    fn builder_chains() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap().add_edge(1, 2).unwrap();
        assert_eq!(b.build().edge_count(), 2);
    }

    #[test]
    fn adjacency_lists_are_sorted() {
        let mut b = GraphBuilder::new(6);
        for v in [5, 1, 3, 2, 4] {
            b.add_edge(0, v).unwrap();
        }
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn zero_vertex_builder_builds_empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert!(g.is_empty());
    }

    #[test]
    fn with_edge_capacity_behaves_like_new() {
        let mut b = GraphBuilder::with_edge_capacity(3, 8);
        b.add_edge(0, 2).unwrap();
        assert_eq!(b.vertex_count(), 3);
        assert_eq!(b.build().edge_count(), 1);
    }
}

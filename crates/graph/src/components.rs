//! Connected components, including subset-restricted variants.
//!
//! The paper defines clusters as the connected components of the induced
//! subgraph `G(W_t)` of a carved block `W_t`; [`components_restricted`] is
//! that operation.

use std::collections::VecDeque;

use crate::{Graph, VertexId, VertexSet};

/// Labeling of vertices by connected component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// `label[v]` is the component index of `v`, or `None` if `v` was not in
    /// the searched subset.
    labels: Vec<Option<usize>>,
    count: usize,
}

impl Components {
    /// Number of components found.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Component label of `v` (`None` if `v` was outside the subset).
    #[must_use]
    pub fn label(&self, v: VertexId) -> Option<usize> {
        self.labels[v]
    }

    /// Slice of all labels, indexed by vertex.
    #[must_use]
    pub fn labels(&self) -> &[Option<usize>] {
        &self.labels
    }

    /// Groups vertices by component, each group sorted increasingly.
    #[must_use]
    pub fn groups(&self) -> Vec<Vec<VertexId>> {
        let mut groups = vec![Vec::new(); self.count];
        for (v, label) in self.labels.iter().enumerate() {
            if let Some(c) = label {
                groups[*c].push(v);
            }
        }
        groups
    }

    /// `true` if every labeled vertex is in one single component.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        self.count <= 1
    }
}

/// Connected components of the whole graph.
#[must_use]
pub fn components(g: &Graph) -> Components {
    components_restricted(g, &VertexSet::full(g.vertex_count()))
}

/// Connected components of the subgraph induced by `subset`.
///
/// # Panics
///
/// Panics if `subset`'s universe differs from the graph's vertex count.
#[must_use]
pub fn components_restricted(g: &Graph, subset: &VertexSet) -> Components {
    assert_eq!(
        subset.universe(),
        g.vertex_count(),
        "subset universe must equal the vertex count"
    );
    let mut labels = vec![None; g.vertex_count()];
    let mut count = 0;
    let mut queue = VecDeque::new();
    for root in subset.iter() {
        if labels[root].is_some() {
            continue;
        }
        labels[root] = Some(count);
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if subset.contains(v) && labels[v].is_none() {
                    labels[v] = Some(count);
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    Components { labels, count }
}

/// `true` if the whole graph is connected (vacuously true when empty).
#[must_use]
pub fn is_connected(g: &Graph) -> bool {
    components(g).is_connected()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn single_component_on_cycle() {
        let g = generators::cycle(5);
        let c = components(&g);
        assert_eq!(c.count(), 1);
        assert!(c.is_connected());
        assert_eq!(c.groups(), vec![vec![0, 1, 2, 3, 4]]);
    }

    #[test]
    fn isolated_vertices_are_own_components() {
        let g = Graph::empty(3);
        let c = components(&g);
        assert_eq!(c.count(), 3);
        assert!(!c.is_connected());
    }

    #[test]
    fn two_components() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3)]).unwrap();
        let c = components(&g);
        assert_eq!(c.count(), 3);
        assert_eq!(c.label(0), c.label(1));
        assert_eq!(c.label(2), c.label(3));
        assert_ne!(c.label(0), c.label(2));
        assert_ne!(c.label(4), c.label(0));
    }

    #[test]
    fn restriction_splits_components() {
        // Path 0-1-2-3-4; removing 2 splits into {0,1} and {3,4}.
        let g = generators::path(5);
        let mut alive = VertexSet::full(5);
        alive.remove(2);
        let c = components_restricted(&g, &alive);
        assert_eq!(c.count(), 2);
        assert_eq!(c.label(2), None);
        assert_eq!(c.label(0), c.label(1));
        assert_eq!(c.label(3), c.label(4));
        assert_ne!(c.label(0), c.label(3));
    }

    #[test]
    fn empty_subset_has_zero_components() {
        let g = generators::path(4);
        let c = components_restricted(&g, &VertexSet::new(4));
        assert_eq!(c.count(), 0);
        assert!(c.is_connected());
        assert!(c.groups().is_empty());
    }

    #[test]
    fn is_connected_helper() {
        assert!(is_connected(&generators::complete(4)));
        assert!(!is_connected(&Graph::empty(2)));
        assert!(is_connected(&Graph::empty(0)));
    }
}

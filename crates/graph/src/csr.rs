//! Compact immutable graph storage in compressed sparse row (CSR) form.

use std::fmt;

use crate::{GraphBuilder, GraphError};

/// Identifier of a vertex: a dense index in `0..n`.
///
/// The distributed model of the paper assumes processors with distinct
/// identities in `{1, …, n}`; dense `usize` indices model this exactly
/// (shifted to `0..n`).
pub type VertexId = usize;

/// An immutable simple undirected unweighted graph in CSR representation.
///
/// Invariants (enforced by [`GraphBuilder`]):
/// - no self-loops, no parallel edges;
/// - the adjacency list of every vertex is sorted in increasing order;
/// - every edge `{u, v}` appears in both `u`'s and `v`'s lists.
///
/// # Example
///
/// ```
/// use netdecomp_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1).unwrap();
/// b.add_edge(1, 2).unwrap();
/// b.add_edge(2, 3).unwrap();
/// let g = b.build();
/// assert_eq!(g.vertex_count(), 4);
/// assert_eq!(g.edge_count(), 3);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Graph {
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
}

impl Graph {
    /// Creates a graph with `n` vertices and no edges.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
        }
    }

    /// Creates a graph from an edge list over vertices `0..n`.
    ///
    /// Duplicate edges and orientation are normalized away.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if an endpoint is `>= n` and
    /// [`GraphError::SelfLoop`] if an edge has equal endpoints.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Result<Self, GraphError> {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v)?;
        }
        Ok(b.build())
    }

    pub(crate) fn from_csr_parts(offsets: Vec<usize>, targets: Vec<VertexId>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap(), targets.len());
        Graph { offsets, targets }
    }

    /// Number of vertices `n`.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// `true` if the graph has no vertices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vertex_count() == 0
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[must_use]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The sorted adjacency list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[must_use]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether the edge `{u, v}` is present. `O(log deg(u))`.
    #[must_use]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u >= self.vertex_count() || v >= self.vertex_count() {
            return false;
        }
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Maximum degree `Δ`; `0` for an empty graph.
    #[must_use]
    pub fn max_degree(&self) -> usize {
        (0..self.vertex_count())
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Iterator over all vertices `0..n`.
    pub fn vertices(&self) -> std::ops::Range<VertexId> {
        0..self.vertex_count()
    }

    /// Iterator over every undirected edge, each reported once as `(u, v)`
    /// with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Iterator over the neighbors of `v` (by value).
    #[must_use]
    pub fn neighbor_iter(&self, v: VertexId) -> NeighborIter<'_> {
        NeighborIter {
            inner: self.neighbors(v).iter(),
        }
    }

    /// Number of *directed* edge slots (`2m`): every undirected edge
    /// `{u, v}` occupies one slot in `u`'s CSR row and one in `v`'s.
    ///
    /// Slots index flat per-edge state (byte counters, flags) without
    /// hashing; see [`Graph::edge_slot`].
    #[must_use]
    pub fn directed_edge_count(&self) -> usize {
        self.targets.len()
    }

    /// The dense index of the directed edge `from -> to` in `0..2m`, or
    /// `None` if `to` is not a neighbor of `from` (or either endpoint is
    /// out of range). `O(log deg(from))`.
    ///
    /// Slots of a fixed `from` are contiguous ([`Graph::neighbor_slots`])
    /// and ordered like [`Graph::neighbors`], so
    /// `targets[edge_slot(u, v)] == v`.
    #[must_use]
    pub fn edge_slot(&self, from: VertexId, to: VertexId) -> Option<usize> {
        if from >= self.vertex_count() {
            return None;
        }
        self.neighbors(from)
            .binary_search(&to)
            .ok()
            .map(|i| self.offsets[from] + i)
    }

    /// The contiguous range of directed-edge slots leaving `v`; slot
    /// `neighbor_slots(v).start + i` goes to `neighbors(v)[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[must_use]
    pub fn neighbor_slots(&self, v: VertexId) -> std::ops::Range<usize> {
        self.offsets[v]..self.offsets[v + 1]
    }

    /// The head (target vertex) of the directed-edge slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= directed_edge_count()`.
    #[must_use]
    pub fn slot_target(&self, slot: usize) -> VertexId {
        self.targets[slot]
    }

    /// The heads of a contiguous slot range, as one slice of the flat CSR
    /// target array: `slot_targets(r)[i] == slot_target(r.start + i)`.
    ///
    /// Hot delivery paths use this to turn per-copy [`Graph::slot_target`]
    /// calls (one bounds check each) into a single slice walk.
    ///
    /// # Panics
    ///
    /// Panics if the range reaches past `directed_edge_count()`.
    #[must_use]
    pub fn slot_targets(&self, slots: std::ops::Range<usize>) -> &[VertexId] {
        &self.targets[slots]
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.vertex_count())
            .field("m", &self.edge_count())
            .finish()
    }
}

/// Iterator over the neighbors of a vertex; see [`Graph::neighbor_iter`].
#[derive(Debug, Clone)]
pub struct NeighborIter<'a> {
    inner: std::slice::Iter<'a, VertexId>,
}

impl Iterator for NeighborIter<'_> {
    type Item = VertexId;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().copied()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for NeighborIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_edges() {
        let g = Graph::empty(5);
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(!g.is_empty());
        assert!(Graph::empty(0).is_empty());
    }

    #[test]
    fn from_edges_builds_symmetric_adjacency() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (3, 1)]).unwrap();
        assert_eq!(g.neighbors(1), &[0, 2, 3]);
        assert_eq!(g.neighbors(0), &[1]);
        assert!(g.has_edge(1, 3));
        assert!(g.has_edge(3, 1));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn from_edges_rejects_out_of_range() {
        assert!(matches!(
            Graph::from_edges(2, &[(0, 2)]),
            Err(GraphError::VertexOutOfRange { vertex: 2, n: 2 })
        ));
    }

    #[test]
    fn from_edges_rejects_self_loop() {
        assert!(matches!(
            Graph::from_edges(3, &[(1, 1)]),
            Err(GraphError::SelfLoop { vertex: 1 })
        ));
    }

    #[test]
    fn duplicate_edges_are_collapsed() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn edges_iterator_reports_each_edge_once() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2), (2, 3)]);
    }

    #[test]
    fn has_edge_handles_out_of_range_gracefully() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        assert!(!g.has_edge(0, 7));
        assert!(!g.has_edge(7, 0));
    }

    #[test]
    fn neighbor_iter_matches_slice() {
        let g = Graph::from_edges(5, &[(2, 0), (2, 4), (2, 1)]).unwrap();
        let via_iter: Vec<_> = g.neighbor_iter(2).collect();
        assert_eq!(via_iter, g.neighbors(2).to_vec());
        assert_eq!(g.neighbor_iter(2).len(), 3);
    }

    #[test]
    fn debug_is_nonempty() {
        let g = Graph::empty(1);
        assert!(!format!("{g:?}").is_empty());
    }

    #[test]
    fn edge_slots_are_dense_and_aligned_with_neighbors() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 3), (1, 2), (2, 3), (3, 4)]).unwrap();
        assert_eq!(g.directed_edge_count(), 10);
        let mut seen = vec![false; g.directed_edge_count()];
        for u in g.vertices() {
            let range = g.neighbor_slots(u);
            assert_eq!(range.len(), g.degree(u));
            assert_eq!(g.slot_targets(range.clone()), g.neighbors(u));
            for (i, slot) in range.clone().enumerate() {
                let v = g.neighbors(u)[i];
                assert_eq!(g.slot_target(slot), v);
                assert_eq!(g.edge_slot(u, v), Some(slot));
                assert!(!seen[slot], "slot {slot} reused");
                seen[slot] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every slot covered");
        assert_eq!(g.slot_targets(0..0), &[] as &[VertexId]);
    }

    #[test]
    fn edge_slot_rejects_non_edges_and_out_of_range() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert_eq!(g.edge_slot(0, 2), None);
        assert_eq!(g.edge_slot(2, 0), None);
        assert_eq!(g.edge_slot(7, 0), None);
        assert_eq!(g.edge_slot(0, 7), None);
    }

    #[test]
    fn empty_graph_has_no_slots() {
        let g = Graph::empty(4);
        assert_eq!(g.directed_edge_count(), 0);
        assert_eq!(g.neighbor_slots(2), 0..0);
    }
}

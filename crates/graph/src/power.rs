//! Graph powers: `G^r` connects vertices at distance ≤ `r`.
//!
//! Neighborhood covers and several decomposition applications operate on
//! `G^r`; a decomposition of `G^r` gives clusters whose `G`-distance
//! blow-up is a factor `r`.

use std::collections::VecDeque;

use crate::{Graph, GraphBuilder, GraphError};

/// Builds `G^r`: same vertices, an edge `{u, v}` whenever
/// `1 ≤ d_G(u, v) ≤ r`.
///
/// Cost: one truncated BFS per vertex, `O(n · |B(v, r)|)` overall.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] if `r == 0` (the power is edgeless by
/// definition and almost surely a caller bug).
///
/// # Example
///
/// ```
/// use netdecomp_graph::{generators, power};
///
/// let p = generators::path(5);
/// let p2 = power::power(&p, 2)?;
/// assert!(p2.has_edge(0, 2));
/// assert!(!p2.has_edge(0, 3));
/// # Ok::<(), netdecomp_graph::GraphError>(())
/// ```
pub fn power(g: &Graph, r: usize) -> Result<Graph, GraphError> {
    if r == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "graph power exponent must be at least 1".into(),
        });
    }
    let n = g.vertex_count();
    let mut b = GraphBuilder::new(n);
    let mut dist: Vec<Option<usize>> = vec![None; n];
    let mut touched: Vec<usize> = Vec::new();
    let mut queue = VecDeque::new();
    for v in 0..n {
        // Truncated BFS to depth r.
        dist[v] = Some(0);
        touched.push(v);
        queue.push_back(v);
        while let Some(u) = queue.pop_front() {
            let du = dist[u].expect("queued implies distance");
            if du == r {
                continue;
            }
            for &w in g.neighbors(u) {
                if dist[w].is_none() {
                    dist[w] = Some(du + 1);
                    touched.push(w);
                    queue.push_back(w);
                }
            }
        }
        for &w in &touched {
            if w > v {
                b.add_edge(v, w).expect("indices in range");
            }
        }
        for w in touched.drain(..) {
            dist[w] = None;
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn square_of_path() {
        let g = generators::path(5);
        let g2 = power(&g, 2).unwrap();
        assert!(g2.has_edge(0, 1));
        assert!(g2.has_edge(0, 2));
        assert!(!g2.has_edge(0, 3));
        assert_eq!(g2.edge_count(), 4 + 3);
    }

    #[test]
    fn power_one_is_identity() {
        let g = generators::grid2d(3, 4);
        assert_eq!(power(&g, 1).unwrap(), g);
    }

    #[test]
    fn large_power_is_complete_per_component() {
        let g = generators::cycle(6);
        let gp = power(&g, 5).unwrap();
        assert_eq!(gp.edge_count(), 15); // K6
    }

    #[test]
    fn power_respects_components() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let gp = power(&g, 3).unwrap();
        assert!(gp.has_edge(0, 1));
        assert!(!gp.has_edge(0, 2));
        assert!(!gp.has_edge(1, 3));
    }

    #[test]
    fn zero_exponent_rejected() {
        let g = generators::path(3);
        assert!(power(&g, 0).is_err());
    }
}

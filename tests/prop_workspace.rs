//! Workspace-level property tests: the paper's invariants on arbitrary
//! random graphs.

use proptest::prelude::*;

use netdecomp::apps::{mis, verify as app_verify};
use netdecomp::core::distributed::{decompose_distributed, DistributedConfig, Forwarding};
use netdecomp::core::{basic, params::DecompositionParams, verify};
use netdecomp::graph::{Graph, GraphBuilder};

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (4usize..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(2 * n)).prop_map(move |pairs| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in pairs {
                if u != v {
                    b.add_edge(u, v).expect("in range");
                }
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn decomposition_invariants_on_arbitrary_graphs(
        g in arb_graph(48),
        k in 2usize..5,
        seed in 0u64..1000,
    ) {
        let p = DecompositionParams::new(k, 4.0).expect("valid");
        let o = basic::decompose(&g, &p, seed).expect("runs");
        let r = verify::verify(&g, o.decomposition()).expect("same graph");
        // Coverage and disjointness are unconditional.
        prop_assert!(r.complete);
        prop_assert!(r.supergraph_properly_colored);
        // The diameter bound is conditional on no truncation events.
        if o.events().clean() {
            prop_assert!(r.clusters_connected);
            prop_assert!(r.max_strong_diameter.is_some_and(|d| d <= p.diameter_bound()));
            prop_assert_eq!(o.mixed_center_clusters(), 0);
        }
        // Colors never exceed phases used.
        prop_assert!(o.decomposition().block_count() <= o.phases_used());
    }

    #[test]
    fn central_and_distributed_agree_on_arbitrary_graphs(
        g in arb_graph(28),
        seed in 0u64..100,
    ) {
        let p = DecompositionParams::new(3, 4.0).expect("valid");
        let central = basic::decompose(&g, &p, seed).expect("runs");
        let top2 = decompose_distributed(&g, &p, seed, &DistributedConfig::default())
            .expect("runs");
        prop_assert_eq!(central.decomposition(), top2.outcome.decomposition());
        let full = decompose_distributed(
            &g,
            &p,
            seed,
            &DistributedConfig { forwarding: Forwarding::Full, ..DistributedConfig::default() },
        )
        .expect("runs");
        prop_assert_eq!(central.decomposition(), full.outcome.decomposition());
    }

    #[test]
    fn mis_via_decomposition_is_always_valid(
        g in arb_graph(40),
        seed in 0u64..100,
    ) {
        let p = DecompositionParams::new(3, 4.0).expect("valid");
        let o = basic::decompose(&g, &p, seed).expect("runs");
        let m = mis::solve(&g, o.decomposition()).expect("complete decomposition");
        prop_assert!(app_verify::is_maximal_independent_set(&g, &m.in_mis));
    }

    #[test]
    fn partition_is_a_partition(
        g in arb_graph(48),
        seed in 0u64..1000,
    ) {
        let p = DecompositionParams::new(2, 4.0).expect("valid");
        let o = basic::decompose(&g, &p, seed).expect("runs");
        let partition = o.decomposition().partition();
        // Every vertex in exactly one cluster.
        let clusters = partition.clusters();
        let mut seen = vec![false; g.vertex_count()];
        for members in &clusters {
            for &v in members {
                prop_assert!(!seen[v], "vertex {} in two clusters", v);
                seen[v] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|b| b));
    }
}

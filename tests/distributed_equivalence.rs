//! The centralized simulation and the message-passing execution are the
//! same algorithm: bit-identical outputs under equal seeds, across
//! forwarding modes, across sequential and parallel engines, with CONGEST
//! budgets respected.

use netdecomp::core::distributed::{decompose_distributed, DistributedConfig, Forwarding};
use netdecomp::core::{basic, params::DecompositionParams};
use netdecomp::graph::generators;
use netdecomp::sim::{CongestLimit, Determinism, Engine, FrameTransport};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn central_equals_congest_equals_local_across_graphs() {
    let mut rng = StdRng::seed_from_u64(4);
    let graphs = [
        generators::gnp(80, 0.06, &mut rng).unwrap(),
        generators::grid2d(8, 9),
        generators::caveman(6, 6).unwrap(),
        generators::random_tree(70, &mut rng),
    ];
    for (i, g) in graphs.iter().enumerate() {
        for seed in 0..2u64 {
            let p = DecompositionParams::new(3, 4.0).unwrap();
            let central = basic::decompose(g, &p, seed).unwrap();
            let top2 = decompose_distributed(g, &p, seed, &DistributedConfig::default()).unwrap();
            let full = decompose_distributed(
                g,
                &p,
                seed,
                &DistributedConfig {
                    forwarding: Forwarding::Full,
                    ..DistributedConfig::default()
                },
            )
            .unwrap();
            assert_eq!(
                central.decomposition(),
                top2.outcome.decomposition(),
                "graph {i} seed {seed}: central != top2"
            );
            assert_eq!(
                top2.outcome.decomposition(),
                full.outcome.decomposition(),
                "graph {i} seed {seed}: top2 != full"
            );
            assert_eq!(central.phases_used(), top2.outcome.phases_used());
            assert_eq!(
                central.events().truncation_events,
                top2.outcome.events().truncation_events
            );
        }
    }
}

#[test]
fn congest_budget_of_two_entries_suffices_for_top_two() {
    let g = generators::grid2d(7, 7);
    let p = DecompositionParams::new(3, 4.0).unwrap();
    for seed in 0..3u64 {
        let run = decompose_distributed(
            &g,
            &p,
            seed,
            &DistributedConfig {
                forwarding: Forwarding::TopTwo,
                congest_limit: CongestLimit::PerEdgeBytes(28),
                ..DistributedConfig::default()
            },
        )
        .expect("two 14-byte entries per edge per round must fit");
        assert!(run.comm.max_edge_bytes <= 28, "seed {seed}");
    }
}

#[test]
fn full_forwarding_costs_at_least_as_many_messages() {
    let mut rng = StdRng::seed_from_u64(9);
    let g = generators::gnp(100, 0.05, &mut rng).unwrap();
    let p = DecompositionParams::new(4, 4.0).unwrap();
    let top2 = decompose_distributed(&g, &p, 1, &DistributedConfig::default()).unwrap();
    let full = decompose_distributed(
        &g,
        &p,
        1,
        &DistributedConfig {
            forwarding: Forwarding::Full,
            ..DistributedConfig::default()
        },
    )
    .unwrap();
    assert!(full.comm.total_messages >= top2.comm.total_messages);
    assert!(full.comm.max_edge_bytes >= top2.comm.max_edge_bytes);
}

#[test]
fn round_count_matches_phase_structure() {
    // Every phase runs exactly cap + 1 simulator steps.
    let g = generators::cycle(24);
    let p = DecompositionParams::new(3, 4.0).unwrap();
    let run = decompose_distributed(&g, &p, 2, &DistributedConfig::default()).unwrap();
    let phases = run.outcome.phases_used();
    assert_eq!(run.comm.rounds, phases * (p.radius_cap() + 1));
}

#[test]
fn communication_is_deterministic_under_seed() {
    let g = generators::grid2d(6, 6);
    let p = DecompositionParams::new(3, 4.0).unwrap();
    let a = decompose_distributed(&g, &p, 5, &DistributedConfig::default()).unwrap();
    let b = decompose_distributed(&g, &p, 5, &DistributedConfig::default()).unwrap();
    assert_eq!(a.comm, b.comm);
    assert_eq!(a.outcome, b.outcome);
}

#[test]
fn parallel_engine_is_bit_identical_across_graphs_and_modes() {
    let mut rng = StdRng::seed_from_u64(17);
    let graphs = [
        generators::gnp(80, 0.06, &mut rng).unwrap(),
        generators::grid2d(8, 9),
        generators::caveman(6, 6).unwrap(),
    ];
    let p = DecompositionParams::new(3, 4.0).unwrap();
    for (i, g) in graphs.iter().enumerate() {
        for seed in 0..2u64 {
            for forwarding in [Forwarding::TopTwo, Forwarding::Full] {
                let seq = decompose_distributed(
                    g,
                    &p,
                    seed,
                    &DistributedConfig {
                        forwarding,
                        ..DistributedConfig::default()
                    },
                )
                .unwrap();
                let par = decompose_distributed(
                    g,
                    &p,
                    seed,
                    &DistributedConfig {
                        forwarding,
                        // shards: 0 honors NETDECOMP_SHARDS (exercised by a
                        // dedicated CI matrix entry), defaulting to the
                        // thread count.
                        engine: Engine::Parallel {
                            threads: 4,
                            shards: 0,
                        },
                        determinism: Determinism::Verify,
                        ..DistributedConfig::default()
                    },
                )
                .unwrap();
                assert_eq!(
                    seq.outcome, par.outcome,
                    "graph {i} seed {seed} {forwarding:?}: outcome diverged"
                );
                assert_eq!(
                    seq.comm, par.comm,
                    "graph {i} seed {seed} {forwarding:?}: stats diverged"
                );
            }
        }
    }
}

#[test]
fn framed_backends_are_bit_identical_for_the_decomposition() {
    // The full carving protocol through the frame seam: every bucket of
    // every round is serialized into a checksummed frame, shipped by the
    // loopback or channel transport, decoded, and verified round-by-round
    // against the sequential reference merge.
    let g = generators::grid2d(7, 8);
    let p = DecompositionParams::new(3, 4.0).unwrap();
    for seed in 0..2u64 {
        let seq = decompose_distributed(&g, &p, seed, &DistributedConfig::default()).unwrap();
        for transport in [FrameTransport::Loopback, FrameTransport::Channel] {
            let framed = decompose_distributed(
                &g,
                &p,
                seed,
                &DistributedConfig {
                    engine: Engine::Framed {
                        threads: 2,
                        shards: 5,
                        transport,
                    },
                    determinism: Determinism::Verify,
                    ..DistributedConfig::default()
                },
            )
            .unwrap();
            assert_eq!(
                seq.outcome, framed.outcome,
                "seed {seed} {transport:?}: outcome diverged"
            );
            assert_eq!(
                seq.comm, framed.comm,
                "seed {seed} {transport:?}: stats diverged"
            );
        }
    }
}

#[test]
fn parallel_engine_respects_congest_budget() {
    let g = generators::grid2d(7, 7);
    let p = DecompositionParams::new(3, 4.0).unwrap();
    let run = decompose_distributed(
        &g,
        &p,
        1,
        &DistributedConfig {
            forwarding: Forwarding::TopTwo,
            congest_limit: CongestLimit::PerEdgeBytes(28),
            engine: Engine::Parallel {
                threads: 0,
                shards: 0,
            },
            ..DistributedConfig::default()
        },
    )
    .expect("budget holds on the parallel engine too");
    assert!(run.comm.max_edge_bytes <= 28);
}

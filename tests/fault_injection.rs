//! The robustness contract across the whole stack: an unreliable
//! delivery fabric — dropping, corrupting, delaying frames, or running
//! over real sockets — either delivers faithfully (bit-identical
//! outcomes) or fails with a typed error in bounded time. Never a hang,
//! never a panic, never a silently wrong decomposition.
//!
//! The fault layer is [`FaultInjectingTransport`], seeded and
//! deterministic, plugged into the Elkin–Neiman carve protocol and the
//! Linial–Saks baseline through their `transport` hooks.

use std::time::{Duration, Instant};

use netdecomp::baselines::linial_saks;
use netdecomp::core::distributed::{decompose_distributed, DistributedConfig};
use netdecomp::core::params::DecompositionParams;
use netdecomp::core::DecompError;
use netdecomp::graph::generators;
use netdecomp::sim::frame::ChannelTransport;
use netdecomp::sim::{
    CongestLimit, Engine, FaultInjectingTransport, FaultPlan, FrameTransport, SocketTransport,
    TransportFactory,
};

/// Every test must finish far inside this bound — the point of the
/// typed-error contract is that faults cost at most one fabric timeout
/// (default 5 s), not a wedged CI job.
const BOUND: Duration = Duration::from_secs(60);

fn framed(shards: usize) -> Engine {
    Engine::Framed {
        threads: shards,
        shards,
        transport: FrameTransport::Channel,
    }
}

fn faulty_channels(plan: FaultPlan) -> TransportFactory {
    TransportFactory::new(move |shards| {
        Box::new(FaultInjectingTransport::new(
            ChannelTransport::new(shards),
            shards,
            plan,
        ))
    })
}

#[test]
fn a_quiet_fault_layer_keeps_the_carve_bit_identical() {
    let g = generators::grid2d(8, 8);
    let p = DecompositionParams::new(3, 4.0).unwrap();
    for seed in 0..2u64 {
        let reference = decompose_distributed(&g, &p, seed, &DistributedConfig::default()).unwrap();
        let faulted = decompose_distributed(
            &g,
            &p,
            seed,
            &DistributedConfig {
                engine: framed(3),
                transport: Some(faulty_channels(FaultPlan::quiet(7))),
                ..DistributedConfig::default()
            },
        )
        .unwrap();
        assert_eq!(
            reference.outcome.decomposition(),
            faulted.outcome.decomposition(),
            "seed {seed}: a pass-through fault layer changed the outcome"
        );
        assert_eq!(reference.comm, faulted.comm, "seed {seed}");
    }
}

#[test]
fn the_carve_protocol_runs_over_sockets_bit_identical() {
    let g = generators::caveman(5, 5).unwrap();
    let p = DecompositionParams::new(3, 4.0).unwrap();
    let seed = 11;
    let reference = decompose_distributed(&g, &p, seed, &DistributedConfig::default()).unwrap();
    let socketed = decompose_distributed(
        &g,
        &p,
        seed,
        &DistributedConfig {
            engine: Engine::Framed {
                threads: 3,
                shards: 3,
                transport: FrameTransport::Socket,
            },
            transport: Some(TransportFactory::new(|shards| {
                Box::new(SocketTransport::unix_mesh(shards))
            })),
            ..DistributedConfig::default()
        },
    )
    .unwrap();
    assert_eq!(
        reference.outcome.decomposition(),
        socketed.outcome.decomposition(),
        "the socket fabric changed the outcome"
    );
    assert_eq!(reference.comm, socketed.comm);
}

#[test]
fn dropped_frames_fail_the_carve_typed_within_the_bound() {
    let g = generators::grid2d(8, 8);
    let p = DecompositionParams::new(3, 4.0).unwrap();
    let started = Instant::now();
    let error = decompose_distributed(
        &g,
        &p,
        5,
        &DistributedConfig {
            engine: framed(3),
            transport: Some(faulty_channels(FaultPlan::drops(13, 500))),
            ..DistributedConfig::default()
        },
    )
    .unwrap_err();
    assert!(
        matches!(&error, DecompError::Simulation { .. }),
        "want a typed simulation failure, got {error:?}"
    );
    assert!(
        started.elapsed() < BOUND,
        "a dropped frame must fail fast, took {:?}",
        started.elapsed()
    );
}

#[test]
fn corrupted_frames_fail_the_carve_typed_within_the_bound() {
    let g = generators::grid2d(8, 8);
    let p = DecompositionParams::new(3, 4.0).unwrap();
    let started = Instant::now();
    let error = decompose_distributed(
        &g,
        &p,
        5,
        &DistributedConfig {
            engine: framed(3),
            transport: Some(faulty_channels(FaultPlan::corruption(29, 500))),
            ..DistributedConfig::default()
        },
    )
    .unwrap_err();
    assert!(
        matches!(&error, DecompError::Simulation { .. }),
        "want a typed simulation failure, got {error:?}"
    );
    assert!(started.elapsed() < BOUND, "took {:?}", started.elapsed());
}

#[test]
fn a_quiet_fault_layer_keeps_linial_saks_bit_identical() {
    let g = generators::caveman(4, 5).unwrap();
    let p = linial_saks::LinialSaksParams::new(3, 4.0).unwrap();
    let seed = 3;
    let (reference, ref_comm) =
        linial_saks::decompose_distributed(&g, &p, seed, CongestLimit::Unlimited, framed(3))
            .unwrap();
    let factory = faulty_channels(FaultPlan::quiet(17));
    let (faulted, faulted_comm) = linial_saks::decompose_distributed_with_transport(
        &g,
        &p,
        seed,
        CongestLimit::Unlimited,
        framed(3),
        Some(&factory),
    )
    .unwrap();
    assert_eq!(
        reference.decomposition, faulted.decomposition,
        "a pass-through fault layer changed the baseline outcome"
    );
    assert_eq!(ref_comm, faulted_comm);
}

#[test]
fn dropped_frames_fail_linial_saks_typed_within_the_bound() {
    let g = generators::grid2d(7, 7);
    let p = linial_saks::LinialSaksParams::new(3, 4.0).unwrap();
    let factory = faulty_channels(FaultPlan::drops(41, 500));
    let started = Instant::now();
    let error = linial_saks::decompose_distributed_with_transport(
        &g,
        &p,
        9,
        CongestLimit::Unlimited,
        framed(3),
        Some(&factory),
    )
    .unwrap_err();
    assert!(
        matches!(&error, DecompError::Simulation { .. }),
        "want a typed simulation failure, got {error:?}"
    );
    assert!(started.elapsed() < BOUND, "took {:?}", started.elapsed());
}

//! Cross-crate comparison of the paper's algorithm against its baselines.

use netdecomp::baselines::{
    ball_carving, decomposition_via_greedy_coloring, linial_saks, mpx, trivial,
};
use netdecomp::core::{basic, params::DecompositionParams, verify};
use netdecomp::graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn linial_saks_weak_bound_holds_everywhere() {
    let mut rng = StdRng::seed_from_u64(0);
    let graphs = [
        generators::gnp(150, 0.04, &mut rng).unwrap(),
        generators::grid2d(10, 10),
        generators::caveman(8, 6).unwrap(),
    ];
    for (i, g) in graphs.iter().enumerate() {
        for seed in 0..4u64 {
            let p = linial_saks::LinialSaksParams::new(4, 4.0).unwrap();
            let o = linial_saks::decompose(g, &p, seed).unwrap();
            let r = verify::verify(g, &o.decomposition).unwrap();
            assert!(r.complete, "graph {i} seed {seed}");
            assert!(
                r.is_valid_weak(p.weak_diameter_bound()),
                "graph {i} seed {seed}: {r:?}"
            );
        }
    }
}

#[test]
fn en16_dominates_ls93_on_strong_diameter() {
    // On every graph/seed: EN16's strong diameter is bounded; LS93's weak
    // diameter is bounded but its strong diameter may be infinite. Verify
    // the one-sided domination: whenever LS93 is connected, both are
    // finite; EN16 is *always* finite (given clean events).
    let g = generators::grid2d(12, 12);
    let k = 5usize;
    for seed in 0..10u64 {
        let en = basic::decompose(&g, &DecompositionParams::new(k, 4.0).unwrap(), seed).unwrap();
        let en_r = verify::verify(&g, en.decomposition()).unwrap();
        if en.events().clean() {
            assert!(
                en_r.max_strong_diameter.is_some_and(|d| d <= 2 * k - 2),
                "seed {seed}"
            );
        }
        let ls = linial_saks::decompose(
            &g,
            &linial_saks::LinialSaksParams::new(k, 4.0).unwrap(),
            seed,
        )
        .unwrap();
        let ls_r = verify::verify(&g, &ls.decomposition).unwrap();
        assert!(ls_r.max_weak_diameter.is_some_and(|d| d <= 2 * (k - 1)));
    }
}

#[test]
fn mpx_partition_guarantees() {
    let mut rng = StdRng::seed_from_u64(2);
    let g = generators::gnp(300, 0.03, &mut rng).unwrap();
    for seed in 0..4u64 {
        let padded = mpx::padded_partition(&g, 0.3, seed).unwrap();
        assert!(padded.partition.is_complete());
        let report = mpx::report(&g, &padded);
        assert!(
            report.max_strong_diameter.is_some(),
            "seed {seed}: MPX cluster disconnected"
        );
        assert!(report.cut_fraction <= 1.0);
    }
}

#[test]
fn mpx_as_decomposition_is_verifiable() {
    let g = generators::grid2d(9, 9);
    let padded = mpx::padded_partition(&g, 0.4, 3).unwrap();
    let centers = padded.centers.clone();
    let d = decomposition_via_greedy_coloring(&g, padded.partition, centers);
    let r = verify::verify(&g, &d).unwrap();
    assert!(r.complete);
    assert!(r.clusters_connected);
    assert!(r.supergraph_properly_colored);
}

#[test]
fn ball_carving_as_decomposition_is_verifiable() {
    let g = generators::caveman(6, 7).unwrap();
    let carve = ball_carving::carve(&g, 0.3).unwrap();
    let max_radius = carve.max_radius;
    let d = decomposition_via_greedy_coloring(&g, carve.partition, carve.centers);
    let r = verify::verify(&g, &d).unwrap();
    assert!(r.complete && r.clusters_connected && r.supergraph_properly_colored);
    assert!(r
        .max_strong_diameter
        .is_some_and(|diam| diam <= 2 * max_radius));
}

#[test]
fn trivial_baselines_anchor_the_tradeoff() {
    let g = generators::cycle(12);
    let s = trivial::singletons(&g);
    let rs = verify::verify(&g, &s).unwrap();
    assert!(rs.is_valid_strong(0));

    let w = trivial::whole_components(&g);
    let rw = verify::verify(&g, &w).unwrap();
    assert_eq!(rw.color_count, 1);
    assert_eq!(rw.max_strong_diameter, Some(6));
}

#[test]
fn en16_and_ls93_comparable_color_counts_at_headline() {
    // Both use O(log n) colors at k = ln n; check they are within a small
    // factor of each other on a random graph.
    let mut rng = StdRng::seed_from_u64(5);
    let n = 256;
    let g = generators::gnp(n, 6.0 / n as f64, &mut rng).unwrap();
    let k = (n as f64).ln().ceil() as usize;
    let en = basic::decompose(&g, &DecompositionParams::new(k, 4.0).unwrap(), 1).unwrap();
    let ls = linial_saks::decompose(&g, &linial_saks::LinialSaksParams::new(k, 4.0).unwrap(), 1)
        .unwrap();
    let en_colors = en.decomposition().block_count();
    let ls_colors = ls.decomposition.block_count();
    assert!(en_colors > 0 && ls_colors > 0);
    assert!(
        en_colors <= 10 * ls_colors && ls_colors <= 10 * en_colors,
        "colors wildly different: EN {en_colors} vs LS {ls_colors}"
    );
}

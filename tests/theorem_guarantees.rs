//! Workspace integration tests: the theorems' guarantees end to end,
//! across graph families, parameters, and seeds.

use netdecomp::core::{basic, high_radius, params, staged, verify, BudgetPolicy};
use netdecomp::graph::{generators, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn families(n: usize, seed: u64) -> Vec<(&'static str, Graph)> {
    let mut rng = StdRng::seed_from_u64(seed);
    vec![
        ("gnp", generators::gnp(n, 6.0 / n as f64, &mut rng).unwrap()),
        ("grid", {
            let side = (n as f64).sqrt().round() as usize;
            generators::grid2d(side, side)
        }),
        ("cycle", generators::cycle(n)),
        ("tree", generators::random_tree(n, &mut rng)),
        ("caveman", generators::caveman(n / 8, 8).unwrap()),
        ("ba", generators::barabasi_albert(n, 3, &mut rng).unwrap()),
    ]
}

#[test]
fn theorem1_all_guarantees_across_families() {
    for (name, g) in families(144, 0) {
        for seed in 0..3u64 {
            for k in [2usize, 3, 5] {
                let p = params::DecompositionParams::new(k, 4.0).unwrap();
                let o = basic::decompose(&g, &p, seed).unwrap();
                let r = verify::verify(&g, o.decomposition()).unwrap();
                assert!(r.complete, "{name} k={k} seed={seed}: incomplete");
                assert!(
                    r.supergraph_properly_colored,
                    "{name} k={k} seed={seed}: improper"
                );
                if o.events().clean() {
                    assert!(
                        r.is_valid_strong(p.diameter_bound()),
                        "{name} k={k} seed={seed}: {r:?}"
                    );
                    assert_eq!(
                        o.mixed_center_clusters(),
                        0,
                        "{name} k={k} seed={seed}: mixed centers without truncation"
                    );
                }
            }
        }
    }
}

#[test]
fn theorem2_color_improvement_and_guarantees() {
    let mut rng = StdRng::seed_from_u64(1);
    let g = generators::gnp(400, 0.02, &mut rng).unwrap();
    let k = 3;
    let mut basic_colors = 0usize;
    let mut staged_colors = 0usize;
    for seed in 0..6u64 {
        let bp = params::DecompositionParams::new(k, 6.0).unwrap();
        let sp = params::StagedParams::new(k, 6.0).unwrap();
        let b = basic::decompose(&g, &bp, seed).unwrap();
        let s = staged::decompose(&g, &sp, seed).unwrap();
        let r = verify::verify(&g, s.decomposition()).unwrap();
        assert!(r.complete && r.supergraph_properly_colored);
        if s.events().clean() {
            assert!(r.is_valid_strong(sp.diameter_bound()));
        }
        basic_colors += b.decomposition().block_count();
        staged_colors += s.decomposition().block_count();
    }
    assert!(
        staged_colors < basic_colors,
        "staged should use fewer colors: {staged_colors} vs {basic_colors}"
    );
}

#[test]
fn theorem3_color_budget_and_diameter() {
    for (name, g) in families(144, 2) {
        for lambda in [2usize, 3] {
            let p = params::HighRadiusParams::new(lambda, 4.0).unwrap();
            let o = high_radius::decompose(&g, &p, 3).unwrap();
            let r = verify::verify(&g, o.decomposition()).unwrap();
            assert!(r.complete, "{name} lambda={lambda}");
            if o.exhausted_within_budget() {
                assert!(
                    r.color_count <= lambda,
                    "{name} lambda={lambda}: {} colors",
                    r.color_count
                );
            }
            if o.events().clean() {
                assert!(r.is_valid_strong(p.diameter_bound(g.vertex_count())));
            }
        }
    }
}

#[test]
fn stop_at_budget_never_exceeds_it() {
    let g = generators::cycle(60);
    let p = params::DecompositionParams::new(2, 4.0).unwrap();
    for seed in 0..5u64 {
        let o = basic::decompose_with_policy(&g, &p, seed, BudgetPolicy::StopAtBudget).unwrap();
        assert!(o.phases_used() <= o.phase_budget());
        assert!(o.decomposition().block_count() <= o.phase_budget());
    }
}

#[test]
fn success_probability_is_respected_in_aggregate() {
    // Theorem 1 with c = 16: failure prob <= 3/16. Over 24 trials expect
    // >= half successes with enormous margin.
    let mut ok = 0usize;
    let trials = 24u64;
    for seed in 0..trials {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp(200, 0.03, &mut rng).unwrap();
        let p = params::DecompositionParams::new(3, 16.0).unwrap();
        let o = basic::decompose(&g, &p, seed).unwrap();
        let r = verify::verify(&g, o.decomposition()).unwrap();
        if o.exhausted_within_budget() && r.is_valid_strong(p.diameter_bound()) {
            ok += 1;
        }
    }
    assert!(
        ok as f64 >= 0.5 * trials as f64,
        "only {ok}/{trials} successful runs"
    );
}

#[test]
fn disconnected_input_graphs_are_decomposed_componentwise() {
    // Two disjoint cycles; every guarantee holds per component.
    let mut edges = Vec::new();
    for i in 0..10usize {
        edges.push((i, (i + 1) % 10));
    }
    for i in 0..10usize {
        edges.push((10 + i, 10 + (i + 1) % 10));
    }
    let g = Graph::from_edges(20, &edges).unwrap();
    let p = params::DecompositionParams::new(3, 4.0).unwrap();
    let o = basic::decompose(&g, &p, 1).unwrap();
    let r = verify::verify(&g, o.decomposition()).unwrap();
    assert!(r.complete);
    assert!(r.supergraph_properly_colored);
    if o.events().clean() {
        assert!(r.is_valid_strong(p.diameter_bound()));
    }
}

//! Chaos soak for the self-healing distributed fabric: crash, wedge,
//! and kill real worker processes at seeded rounds and require that
//! every supervised run either completes **bit-identically** to the
//! sequential engine or fails with a typed error naming the culprit
//! shard — and that it does either within a wall-clock budget. Hangs
//! are the one outcome these tests never accept.
//!
//! The binary's chaos hooks (`NETDECOMP_CHAOS_*`, documented in
//! `src/bin/netdecomp.rs`) inject the faults; the sweep width is
//! controlled by `NETDECOMP_CHAOS_SEEDS` (default 8, the CI setting).

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Output};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_netdecomp");
const SHARDS: usize = 3;
const ROUNDS: usize = 12;

/// Per-run wall-clock budget: detection + backoff + relaunch + re-run
/// all fit well inside this on any machine CI uses.
const RUN_BUDGET: Duration = Duration::from_secs(30);

/// Writes a small connected graph (a 2-strip ladder) as edge-list text
/// into the cargo-managed temp dir and returns its path.
fn ladder_file(name: &str, n: usize) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}-{}.txt", std::process::id()));
    let mut edges = Vec::new();
    for v in 1..n {
        edges.push((v - 1, v));
        if v >= 2 {
            edges.push((v - 2, v));
        }
    }
    let mut file = std::fs::File::create(&path).unwrap();
    writeln!(file, "{n} {}", edges.len()).unwrap();
    for (u, v) in edges {
        writeln!(file, "{u} {v}").unwrap();
    }
    path
}

/// Runs one supervised distributed invocation under the wall-clock
/// budget, with extra env pairs applied, and returns its output.
fn supervised_run(graph: &PathBuf, env: &[(&str, String)]) -> (Output, Duration) {
    let mut command = Command::new(BIN);
    command
        .arg(graph)
        .args(["--distributed", &SHARDS.to_string()])
        .args(["--rounds", &ROUNDS.to_string()]);
    for (key, value) in env {
        command.env(key, value);
    }
    let started = Instant::now();
    let output = command.output().unwrap();
    let elapsed = started.elapsed();
    assert!(
        elapsed < RUN_BUDGET,
        "a chaos run must never hang: took {elapsed:?} (budget {RUN_BUDGET:?})\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    (output, elapsed)
}

fn assert_healed(output: &Output, label: &str) {
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "[{label}] the supervised run must heal and succeed:\nstdout: {stdout}\nstderr: {stderr}"
    );
    assert!(
        stdout.contains("matches sequential: true"),
        "[{label}] the healed run must be bit-identical to the sequential engine:\n{stdout}"
    );
}

/// Extracts `key=<number>` from the binary's `recovery:` summary line.
fn recovery_counter(output: &Output, key: &str) -> u64 {
    let stdout = String::from_utf8_lossy(&output.stdout);
    let line = stdout
        .lines()
        .find(|line| line.starts_with("recovery:"))
        .unwrap_or_else(|| panic!("no recovery line in:\n{stdout}"));
    let needle = format!("{key}=");
    let tail = line
        .split_whitespace()
        .find_map(|field| field.strip_prefix(&needle))
        .unwrap_or_else(|| panic!("no `{key}=` field in: {line}"));
    tail.parse().unwrap()
}

/// A splitmix-style scramble so the seeded crash schedule covers
/// different shard/round combinations without any test-side state.
fn scramble(seed: u64) -> u64 {
    let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^ (x >> 27)
}

/// How many seeds the sweep covers: `NETDECOMP_CHAOS_SEEDS` (the CI
/// chaos matrix sets 8), defaulting to 8.
fn sweep_width() -> u64 {
    std::env::var("NETDECOMP_CHAOS_SEEDS")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(8)
}

#[test]
fn a_worker_crash_at_any_seeded_round_heals_bit_identically() {
    // The headline soak: sweep seeds, each picking a shard and a round
    // at which that worker's process dies mid-compute (exit 137, the
    // SIGKILL status). Every run must be supervised back to a
    // bit-identical completion.
    let graph = ladder_file("soak-crash", 36);
    for seed in 0..sweep_width() {
        let mixed = scramble(seed);
        let shard = (mixed % SHARDS as u64) as usize;
        let round = 1 + (mixed >> 8) % (ROUNDS as u64 - 2);
        let (output, elapsed) = supervised_run(
            &graph,
            &[
                ("NETDECOMP_CHAOS_CRASH", format!("{shard}:{round}")),
                ("NETDECOMP_FRAME_TIMEOUT_MS", "2000".into()),
            ],
        );
        let label = format!("seed {seed}: crash {shard}:{round}");
        assert_healed(&output, &label);
        assert!(
            recovery_counter(&output, "readmissions") >= 1,
            "[{label}] the crash must actually have been healed (took {elapsed:?}):\n{}",
            String::from_utf8_lossy(&output.stdout)
        );
    }
}

#[test]
fn a_wedged_worker_is_killed_and_the_run_recovers() {
    // Shard 2 stops making progress (infinite sleep) at round 4: the
    // supervisor's stall detector must SIGKILL and relaunch it before
    // the surviving peers' collect deadline expires.
    let graph = ladder_file("soak-wedge", 30);
    let (output, _) = supervised_run(
        &graph,
        &[
            ("NETDECOMP_CHAOS_WEDGE", "2:4".into()),
            ("NETDECOMP_FRAME_TIMEOUT_MS", "2000".into()),
        ],
    );
    assert_healed(&output, "wedge 2:4");
    assert!(recovery_counter(&output, "readmissions") >= 1);
}

#[test]
fn an_external_sigkill_mid_run_heals_bit_identically() {
    // The supervisor itself delivers SIGKILL to shard 0 once it has
    // committed round 5 — a true `kill -9`, not a cooperative exit.
    // Rounds are slowed so the tick-sampled kill lands mid-run.
    let graph = ladder_file("soak-kill", 30);
    let (output, _) = supervised_run(
        &graph,
        &[
            ("NETDECOMP_CHAOS_KILL", "0:5".into()),
            ("NETDECOMP_CHAOS_SLOW_MS", "30".into()),
            ("NETDECOMP_FRAME_TIMEOUT_MS", "4000".into()),
        ],
    );
    assert_healed(&output, "kill 0:5");
    assert!(recovery_counter(&output, "readmissions") >= 1);
}

#[test]
fn a_crash_leaves_a_flight_recorder_dump_naming_the_dead_shard() {
    // Same crash as the headline soak, but with the trace plane on: the
    // supervisor must leave a JSONL flight recording behind that holds
    // the crashed shard's streamed per-phase round traces (which
    // survived the SIGKILL on the hub side) AND its own restart
    // decision naming that shard.
    let graph = ladder_file("soak-recorder", 36);
    let dump = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("soak-recorder-{}.jsonl", std::process::id()));
    let (output, _) = supervised_run(
        &graph,
        &[
            ("NETDECOMP_CHAOS_CRASH", "1:5".into()),
            ("NETDECOMP_FRAME_TIMEOUT_MS", "2000".into()),
            ("NETDECOMP_TRACE", "1".into()),
            ("NETDECOMP_TRACE_OUT", dump.display().to_string()),
        ],
    );
    assert_healed(&output, "recorder crash 1:5");
    assert!(recovery_counter(&output, "readmissions") >= 1);
    let recording = std::fs::read_to_string(&dump)
        .unwrap_or_else(|e| panic!("the flight recording {} must exist: {e}", dump.display()));
    assert!(
        recording
            .lines()
            .any(|line| line.contains("\"type\":\"round\"")
                && line.contains("\"shard\":1")
                && line.contains("\"compute_ns\"")),
        "the dump must hold shard 1's per-phase round traces:\n{recording}"
    );
    assert!(
        recording
            .lines()
            .any(|line| line.contains("\"type\":\"event\"")
                && line.contains("\"kind\":\"restart\"")
                && line.contains("\"shard\":1")),
        "the dump must hold the supervisor's restart decision for shard 1:\n{recording}"
    );
    assert!(
        recording
            .lines()
            .any(|line| line.contains("\"kind\":\"halt\"")),
        "a healed run must close the timeline with a halt event:\n{recording}"
    );
    let _ = std::fs::remove_file(&dump);
}

#[test]
fn an_exhausted_restart_budget_is_a_typed_error_naming_the_shard() {
    // Worker 2 dies on every launch (the abort hook stays armed across
    // restarts), so the budget runs out: the run must fail with a typed
    // TransportError naming shard 2 — within the deadline, not a hang.
    let graph = ladder_file("soak-budget", 30);
    let (output, elapsed) = supervised_run(
        &graph,
        &[
            ("NETDECOMP_WORKER_ABORT", "2".into()),
            ("NETDECOMP_FRAME_TIMEOUT_MS", "1000".into()),
        ],
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        !output.status.success(),
        "an unhealable worker must fail the run (took {elapsed:?})"
    );
    assert!(
        stderr.contains("TransportError") && stderr.contains("shard: 2"),
        "the failure must be typed and name the culprit shard:\n{stderr}"
    );
}

#[test]
fn a_deep_crash_with_checkpointing_heals_without_a_whole_run_restart() {
    // The same deep crash as the whole-run-restart test below — round 9
    // with only 2 rounds of replay history — but with checkpointing at
    // interval 3. The crashed worker's newest checkpoint (round 9) is
    // inside the hub's replay window, so it resumes in O(interval):
    // recovery must go through a checkpoint restore, never the
    // O(run-length) whole-run fallback.
    let graph = ladder_file("soak-ckpt-heal", 30);
    let ckpt_dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("soak-ckpt-heal-{}", std::process::id()));
    std::fs::create_dir_all(&ckpt_dir).unwrap();
    let (output, _) = supervised_run(
        &graph,
        &[
            ("NETDECOMP_CHAOS_CRASH", "1:9".into()),
            ("NETDECOMP_REPLAY_WINDOW", "2".into()),
            ("NETDECOMP_CHECKPOINT_DIR", ckpt_dir.display().to_string()),
            ("NETDECOMP_CHECKPOINT_INTERVAL", "3".into()),
            ("NETDECOMP_FRAME_TIMEOUT_MS", "2000".into()),
        ],
    );
    assert_healed(&output, "checkpointed deep crash 1:9");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert_eq!(
        recovery_counter(&output, "full_run_restarts"),
        0,
        "a checkpointed worker must never need the whole-run fallback:\n{stdout}"
    );
    assert!(
        recovery_counter(&output, "checkpoint_restores") >= 1,
        "recovery must have gone through a checkpoint restore:\n{stdout}"
    );
    let _ = std::fs::remove_dir_all(&ckpt_dir);
}

#[test]
fn a_torn_checkpoint_is_rejected_by_digest_and_reported_in_the_flight_record() {
    // A torn/corrupt checkpoint file — here outright garbage claiming to
    // be the newest round — must be detected by the digest check,
    // skipped in favor of the previous valid checkpoint, and reported as
    // a typed rejection in the JSONL flight record. Never trusted, never
    // a hang, never a wrong answer.
    let graph = ladder_file("soak-ckpt-torn", 30);
    let tmp = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let ckpt_dir = tmp.join(format!("soak-ckpt-torn-{}", std::process::id()));
    std::fs::create_dir_all(&ckpt_dir).unwrap();
    // Round 12 outranks every checkpoint the run can write before the
    // crash, so the resuming worker must try (and reject) it first.
    std::fs::write(
        ckpt_dir.join("ckpt-s1-r00000012.ndk"),
        b"not a checkpoint at all",
    )
    .unwrap();
    let dump = tmp.join(format!("soak-ckpt-torn-{}.jsonl", std::process::id()));
    let (output, _) = supervised_run(
        &graph,
        &[
            ("NETDECOMP_CHAOS_CRASH", "1:9".into()),
            ("NETDECOMP_REPLAY_WINDOW", "2".into()),
            ("NETDECOMP_CHECKPOINT_DIR", ckpt_dir.display().to_string()),
            ("NETDECOMP_CHECKPOINT_INTERVAL", "3".into()),
            ("NETDECOMP_FRAME_TIMEOUT_MS", "2000".into()),
            ("NETDECOMP_TRACE", "1".into()),
            ("NETDECOMP_TRACE_OUT", dump.display().to_string()),
        ],
    );
    assert_healed(&output, "torn checkpoint crash 1:9");
    assert!(
        recovery_counter(&output, "checkpoint_restores") >= 1,
        "the previous valid checkpoint must still carry the restore:\n{}",
        String::from_utf8_lossy(&output.stdout)
    );
    let recording = std::fs::read_to_string(&dump)
        .unwrap_or_else(|e| panic!("the flight recording {} must exist: {e}", dump.display()));
    assert!(
        recording
            .lines()
            .any(|line| line.contains("\"kind\":\"checkpoint_reject\"")
                && line.contains("ckpt-s1-r00000012.ndk")),
        "the rejection must be in the flight record, naming the torn file:\n{recording}"
    );
    assert!(
        recording
            .lines()
            .any(|line| line.contains("\"kind\":\"checkpoint_load\"")),
        "the fallback load must be in the flight record too:\n{recording}"
    );
    let _ = std::fs::remove_file(&dump);
    let _ = std::fs::remove_dir_all(&ckpt_dir);
}

#[test]
fn a_crash_outside_the_replay_window_restarts_the_whole_run() {
    // With the replay log clamped to 2 rounds, a crash at round 9 needs
    // history the hub has evicted. Per-worker recovery is refused and
    // the supervisor falls back to restarting the entire run — which
    // (chaos disarmed on re-attempts) then completes bit-identically.
    // Checkpointing is pinned off: this test is about the fallback that
    // remains when there is no checkpoint to resume from (the CI
    // checkpointed row exports NETDECOMP_CHECKPOINT_INTERVAL globally).
    let graph = ladder_file("soak-evicted", 30);
    let (output, _) = supervised_run(
        &graph,
        &[
            ("NETDECOMP_CHAOS_CRASH", "1:9".into()),
            ("NETDECOMP_REPLAY_WINDOW", "2".into()),
            ("NETDECOMP_CHECKPOINT_INTERVAL", "0".into()),
            ("NETDECOMP_FRAME_TIMEOUT_MS", "2000".into()),
        ],
    );
    assert_healed(&output, "evicted-window crash 1:9");
    assert!(
        recovery_counter(&output, "full_run_restarts") >= 1,
        "recovery must have gone through the whole-run fallback:\n{}",
        String::from_utf8_lossy(&output.stdout)
    );
}

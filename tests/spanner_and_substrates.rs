//! Integration tests for the derived structures: spanners from
//! decompositions, graph powers, and induced-subgraph extraction working
//! together across crates.

use netdecomp::apps::spanner;
use netdecomp::core::{basic, high_radius, params, staged, verify};
use netdecomp::graph::{bfs, components, diameter, generators, induced, power, VertexSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn spanner_from_each_theorem_variant() {
    let mut rng = StdRng::seed_from_u64(3);
    let g = generators::gnp(150, 0.12, &mut rng).unwrap();
    let decomps = [
        basic::decompose(&g, &params::DecompositionParams::new(3, 4.0).unwrap(), 2)
            .unwrap()
            .into_decomposition(),
        staged::decompose(&g, &params::StagedParams::new(3, 6.0).unwrap(), 2)
            .unwrap()
            .into_decomposition(),
        high_radius::decompose(&g, &params::HighRadiusParams::new(3, 4.0).unwrap(), 2)
            .unwrap()
            .into_decomposition(),
    ];
    for (i, d) in decomps.iter().enumerate() {
        let r = verify::verify(&g, d).unwrap();
        if !r.clusters_connected {
            continue; // rare truncation run: spanner precondition absent
        }
        let s = spanner::build(&g, d).unwrap();
        let stretch = spanner::measured_stretch(&g, &s.spanner)
            .unwrap_or_else(|| panic!("decomp {i}: spanner does not span"));
        assert!(
            stretch <= s.stretch_bound,
            "decomp {i}: stretch {stretch} > {}",
            s.stretch_bound
        );
        assert!(s.spanner.edge_count() <= g.edge_count());
    }
}

#[test]
fn decomposition_of_graph_power_bounds_base_distance() {
    // Decompose G^2: clusters have strong diameter <= 2k-2 in G^2, hence
    // weak diameter <= 2(2k-2) in G.
    let g = generators::cycle(60);
    let g2 = power::power(&g, 2).unwrap();
    let p = params::DecompositionParams::new(3, 8.0).unwrap();
    let o = basic::decompose(&g2, &p, 5).unwrap();
    if !o.events().clean() {
        return;
    }
    let d = o.decomposition();
    for c in 0..d.cluster_count() {
        let members = d.partition().cluster_set(c);
        let weak_in_g = diameter::weak_diameter(&g, &members).expect("cycle is connected");
        assert!(
            weak_in_g <= 2 * p.diameter_bound(),
            "cluster {c}: weak diameter {weak_in_g} in G exceeds 2x bound"
        );
    }
}

#[test]
fn induced_cluster_graphs_match_restricted_views() {
    // Extracting each cluster as a standalone graph (the leader's collected
    // topology) preserves diameters computed through the restricted view.
    let g = generators::grid2d(8, 8);
    let p = params::DecompositionParams::new(3, 4.0).unwrap();
    let o = basic::decompose(&g, &p, 9).unwrap();
    let d = o.decomposition();
    for c in 0..d.cluster_count() {
        let members = d.partition().cluster_set(c);
        let sub = induced::extract(&g, &members);
        let standalone = diameter::diameter(sub.graph());
        let restricted = diameter::strong_diameter(&g, &members);
        assert_eq!(standalone, restricted, "cluster {c}");
    }
}

#[test]
fn power_contracts_distances_consistently() {
    let g = generators::path(30);
    let g3 = power::power(&g, 3).unwrap();
    let d1 = bfs::distances(&g, 0);
    let d3 = bfs::distances(&g3, 0);
    for v in 0..30 {
        let a = d1[v].unwrap();
        let b = d3[v].unwrap();
        assert_eq!(b, a.div_ceil(3), "vertex {v}: {a} vs {b}");
    }
}

#[test]
fn spanner_of_disconnected_graph_preserves_components() {
    let mut rng = StdRng::seed_from_u64(8);
    // Two disjoint random blobs.
    let blob = generators::gnp(40, 0.2, &mut rng).unwrap();
    let mut edges = Vec::new();
    for (u, v) in blob.edges() {
        edges.push((u, v));
        edges.push((u + 40, v + 40));
    }
    let g = netdecomp::graph::Graph::from_edges(80, &edges).unwrap();
    let p = params::DecompositionParams::new(3, 4.0).unwrap();
    let o = basic::decompose(&g, &p, 4).unwrap();
    let r = verify::verify(&g, o.decomposition()).unwrap();
    if !r.clusters_connected {
        return;
    }
    let s = spanner::build(&g, o.decomposition()).unwrap();
    let gc = components::components(&g);
    let sc = components::components(&s.spanner);
    assert_eq!(gc.count(), sc.count());
    // Every spanner component maps into one graph component.
    let full = VertexSet::full(80);
    for v in full.iter() {
        assert_eq!(gc.label(v).is_some(), sc.label(v).is_some());
    }
}

//! Process-per-shard smoke: the `netdecomp` binary's `--distributed`
//! mode launches one real OS worker process per shard against a socket
//! hub, and a killed worker degrades into a typed error in bounded time.
//!
//! These tests spawn the compiled binary (`CARGO_BIN_EXE_netdecomp`), so
//! they exercise the full stack end to end: launcher → hub → handshake →
//! framed rounds → digest cross-check against the in-process engine.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::Command;
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_netdecomp");

/// Writes a small connected graph (a 2-strip ladder) as edge-list text
/// into the cargo-managed temp dir and returns its path.
fn ladder_file(name: &str, n: usize) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}-{}.txt", std::process::id()));
    let mut edges = Vec::new();
    for v in 1..n {
        edges.push((v - 1, v));
        if v >= 2 {
            edges.push((v - 2, v));
        }
    }
    let mut file = std::fs::File::create(&path).unwrap();
    writeln!(file, "{n} {}", edges.len()).unwrap();
    for (u, v) in edges {
        writeln!(file, "{u} {v}").unwrap();
    }
    path
}

#[test]
fn distributed_mode_matches_the_sequential_engine() {
    let graph = ladder_file("launch-ok", 40);
    let output = Command::new(BIN)
        .arg(&graph)
        .args(["--distributed", "3", "--rounds", "25"])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "distributed run failed:\nstdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(
        stdout.contains("matches sequential: true"),
        "workers must agree with the in-process engine:\n{stdout}"
    );
}

#[test]
fn a_killed_worker_is_a_typed_error_not_a_hang() {
    let graph = ladder_file("launch-kill", 30);
    let started = Instant::now();
    let output = Command::new(BIN)
        .arg(&graph)
        .args(["--distributed", "3", "--rounds", "25"])
        // Worker 1 connects, then dies without a word (the binary's
        // fault hook); keep the fabric timeout short so the test is.
        .env("NETDECOMP_WORKER_ABORT", "1")
        .env("NETDECOMP_FRAME_TIMEOUT_MS", "1000")
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        !output.status.success(),
        "a killed worker must fail the launch"
    );
    assert!(
        stderr.contains("TransportError") && stderr.contains("shard: 1"),
        "the error must be typed and name the dead shard:\n{stderr}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "a dead worker must be detected within the fabric timeout, took {:?}",
        started.elapsed()
    );
}

#[test]
fn distributed_zero_falls_through_to_the_centralized_run() {
    // `--distributed 0` means "off": the normal centralized path runs
    // and verifies (the digest-gated handshake refusals themselves are
    // covered by the socket tests in crates/sim).
    let graph = ladder_file("launch-zero", 10);
    let output = Command::new(BIN)
        .arg(&graph)
        .args(["--distributed", "0"])
        .output()
        .unwrap();
    // --distributed 0 falls through to the normal centralized run (the
    // flag is "off"), which must succeed and verify.
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(String::from_utf8_lossy(&output.stdout).contains("algorithm:"));
}

//! End-to-end application pipelines: decomposition (strong or weak) driving
//! MIS, coloring, and matching.

use netdecomp::apps::{coloring, luby, matching, mis, verify as app_verify};
use netdecomp::baselines::linial_saks;
use netdecomp::core::{basic, high_radius, params, staged};
use netdecomp::graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn full_pipeline_on_all_three_theorems() {
    let mut rng = StdRng::seed_from_u64(7);
    let g = generators::gnp(200, 0.04, &mut rng).unwrap();
    let decomps = [
        basic::decompose(&g, &params::DecompositionParams::new(3, 4.0).unwrap(), 1)
            .unwrap()
            .into_decomposition(),
        staged::decompose(&g, &params::StagedParams::new(3, 6.0).unwrap(), 1)
            .unwrap()
            .into_decomposition(),
        high_radius::decompose(&g, &params::HighRadiusParams::new(3, 4.0).unwrap(), 1)
            .unwrap()
            .into_decomposition(),
    ];
    for (i, d) in decomps.iter().enumerate() {
        let m = mis::solve(&g, d).unwrap();
        assert!(
            app_verify::is_maximal_independent_set(&g, &m.in_mis),
            "decomp {i}: MIS invalid"
        );
        let c = coloring::solve(&g, d).unwrap();
        assert!(
            app_verify::is_proper_coloring(&g, &c.colors, g.max_degree() + 1),
            "decomp {i}: coloring invalid"
        );
        let mm = matching::solve(&g, d).unwrap();
        assert!(
            app_verify::is_maximal_matching(&g, &mm.mate),
            "decomp {i}: matching invalid"
        );
    }
}

#[test]
fn weak_decomposition_also_drives_applications() {
    // LS93 clusters may be disconnected; the sweep falls back to weak radii
    // and the applications stay correct.
    let g = generators::grid2d(10, 10);
    let p = linial_saks::LinialSaksParams::new(5, 2.0).unwrap();
    for seed in 0..5u64 {
        let o = linial_saks::decompose(&g, &p, seed).unwrap();
        let m = mis::solve(&g, &o.decomposition).unwrap();
        assert!(
            app_verify::is_maximal_independent_set(&g, &m.in_mis),
            "seed {seed}"
        );
        let mm = matching::solve(&g, &o.decomposition).unwrap();
        assert!(app_verify::is_maximal_matching(&g, &mm.mate), "seed {seed}");
    }
}

#[test]
fn sweep_cost_is_bounded_by_d_chi() {
    let g = generators::grid2d(9, 9);
    let k = 3usize;
    let p = params::DecompositionParams::new(k, 4.0).unwrap();
    let o = basic::decompose(&g, &p, 3).unwrap();
    if !o.events().clean() {
        return; // diameter bound not guaranteed this run
    }
    let d = o.decomposition();
    let m = mis::solve(&g, d).unwrap();
    // Radius <= k-1 per cluster (Observation 2), so each class costs at
    // most 2(k-1)+1 rounds.
    let per_class = 2 * (k - 1) + 1;
    assert!(m.cost.rounds <= per_class * d.block_count());
    assert_eq!(m.cost.classes, d.block_count());
}

#[test]
fn luby_and_sweep_agree_on_validity_not_membership() {
    let mut rng = StdRng::seed_from_u64(11);
    let g = generators::gnp(150, 0.05, &mut rng).unwrap();
    let p = params::DecompositionParams::new(3, 4.0).unwrap();
    let o = basic::decompose(&g, &p, 2).unwrap();
    let sweep = mis::solve(&g, o.decomposition()).unwrap();
    let direct = luby::solve(&g, 2);
    assert!(app_verify::is_maximal_independent_set(&g, &sweep.in_mis));
    assert!(app_verify::is_maximal_independent_set(&g, &direct.in_mis));
    // Two valid MISes exist; sizes are within a reasonable factor.
    let a = sweep.in_mis.iter().filter(|&&b| b).count();
    let b = direct.in_mis.iter().filter(|&&b| b).count();
    assert!(a * 4 >= b && b * 4 >= a, "sizes {a} vs {b}");
}

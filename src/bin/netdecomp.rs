//! Command-line interface: decompose a graph given as an edge-list file.
//!
//! ```text
//! netdecomp <file|-> [--algo basic|staged|high-radius|ls93] [--k K] [--c C]
//!           [--lambda L] [--seed S] [--assignment] [--json]
//! netdecomp <file> --distributed N [--rounds R] [--max-restarts M]
//!           [--heartbeat-ms H] [--timeout-ms T] [--hub-addr ADDR]
//!           [--checkpoint-dir DIR] [--checkpoint-interval N]
//!           [--json] [--trace-out FILE]
//! netdecomp <file> --worker            # spawned by --distributed
//! ```
//!
//! The input format is the crate's edge-list text (`n m` header then one
//! `u v` pair per line, `#` comments allowed); `-` reads stdin. Prints the
//! verification report; with `--assignment`, also one `vertex cluster
//! color` triple per line.
//!
//! `--distributed N` exercises the process-per-shard fabric: it binds a
//! socket hub, re-launches this binary `N` times in `--worker` mode (one
//! OS process per shard, connected only by the hub socket), runs a
//! max-id flood over the graph, and cross-checks every worker's final
//! shard states against the in-process sequential engine. The run is
//! *supervised*: each worker heartbeats (`--heartbeat-ms`, propagated
//! through the environment), a crashed or wedged worker is relaunched up
//! to `--max-restarts` times, and the hub's replay log fast-forwards the
//! replacement — only an exhausted budget is an error. Worker results
//! arrive as `Stats` control frames over the fabric itself, not by
//! parsing worker stdout. `--timeout-ms` pins the fabric timeout for
//! this invocation and every worker it spawns; `--hub-addr` (or
//! `NETDECOMP_HUB_ADDR`) binds the hub somewhere specific — `unix:PATH`,
//! `tcp:HOST:PORT`, or bare `HOST:PORT` (TCP) — instead of the default
//! loopback temp socket.
//!
//! A worker finds its shard, fabric size, hub address, and round budget
//! in the environment variables named by [`launcher`]'s `ENV_*`
//! constants. Chaos hooks for the soak harness, armed only on a worker's
//! first launch (restarts run clean): `NETDECOMP_WORKER_ABORT=<shard>`
//! connects then dies wordlessly on *every* launch (the budget-exhaustion
//! hook); `NETDECOMP_CHAOS_CRASH=<shard>:<round>` exits 137 when that
//! shard computes that round; `NETDECOMP_CHAOS_WEDGE=<shard>:<round>`
//! sleeps forever there (the supervisor must stall-detect and kill it);
//! `NETDECOMP_CHAOS_KILL=<shard>:<round>` has the *supervisor* SIGKILL
//! the shard from outside when it reaches that round;
//! `NETDECOMP_CHAOS_SLOW_MS=<ms>` slows every round of every worker.
//!
//! Crash recovery in O(interval): `--checkpoint-interval N` (or
//! `NETDECOMP_CHECKPOINT_INTERVAL`) has every worker write a checksummed
//! checkpoint of its shard — protocol state, pending inbox, CONGEST
//! counters, stats — every `N` committed rounds, into `--checkpoint-dir`
//! (`NETDECOMP_CHECKPOINT_DIR`; a temp dir is provisioned when unset). A
//! relaunched worker resumes from its newest *valid* checkpoint (torn or
//! corrupt files are digest-rejected and skipped, never trusted) and
//! re-handshakes at that round, so the hub's replay log only has to
//! cover one interval — a crash older than the replay window no longer
//! forces a whole-run restart.
//!
//! Observability: `--trace-out FILE` enables the trace plane
//! (`NETDECOMP_TRACE=1` + `NETDECOMP_TRACE_OUT`, inherited by every
//! worker) and has the supervisor dump a flight-recorder JSONL timeline
//! — per-round per-shard phase timings plus restart/kill/halt decisions
//! — to FILE on completion or failure. `--json` replaces the prose
//! summary with one machine-readable JSON object on stdout.

use std::io::Read as _;
use std::time::Duration;

use bytes::Bytes;
use netdecomp::baselines::linial_saks;
use netdecomp::core::{basic, high_radius, params, staged, verify, NetworkDecomposition};
use netdecomp::graph::{io, Graph};
use netdecomp::sim::transport::{
    checkpoint_dir, checkpoint_interval, launcher, run_worker_checkpointed, CheckpointPlan,
    WorkerConfig,
};
use netdecomp::sim::{
    frame_timeout, graph_digest, replay_window, CongestLimit, Ctx, HubAddr, HubClient, Inbox,
    Outbox, Protocol, RunStats, ShardPlan, Simulator, Snapshot,
};

struct Options {
    input: String,
    algo: String,
    k: usize,
    c: f64,
    lambda: usize,
    seed: u64,
    assignment: bool,
    worker: bool,
    distributed: usize,
    rounds: usize,
    max_restarts: usize,
    heartbeat_ms: u64,
    timeout_ms: Option<u64>,
    hub_addr: Option<String>,
    json: bool,
    trace_out: Option<String>,
    checkpoint_dir: Option<String>,
    checkpoint_interval: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: netdecomp <file|-> [--algo basic|staged|high-radius|ls93] \
         [--k K] [--c C] [--lambda L] [--seed S] [--assignment] [--json]\n\
         \x20      netdecomp <file> --distributed N [--rounds R] [--max-restarts M]\n\
         \x20                [--heartbeat-ms H] [--timeout-ms T] [--hub-addr ADDR]\n\
         \x20                [--checkpoint-dir DIR] [--checkpoint-interval N]\n\
         \x20                [--json] [--trace-out FILE]"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut opts = Options {
        input: String::new(),
        algo: "basic".into(),
        k: 0, // 0 = derive from n
        c: 0.0,
        lambda: 3,
        seed: 0,
        assignment: false,
        worker: false,
        distributed: 0,
        rounds: 16,
        max_restarts: 3,
        heartbeat_ms: 50,
        timeout_ms: None,
        hub_addr: std::env::var("NETDECOMP_HUB_ADDR").ok(),
        json: false,
        trace_out: None,
        checkpoint_dir: None,
        checkpoint_interval: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--algo" => opts.algo = args.next().unwrap_or_else(|| usage()),
            "--k" => opts.k = parse_or_usage(args.next()),
            "--c" => opts.c = parse_or_usage(args.next()),
            "--lambda" => opts.lambda = parse_or_usage(args.next()),
            "--seed" => opts.seed = parse_or_usage(args.next()),
            "--assignment" => opts.assignment = true,
            "--worker" => opts.worker = true,
            "--distributed" => opts.distributed = parse_or_usage(args.next()),
            "--rounds" => opts.rounds = parse_or_usage(args.next()),
            "--max-restarts" => opts.max_restarts = parse_or_usage(args.next()),
            "--heartbeat-ms" => opts.heartbeat_ms = parse_or_usage(args.next()),
            "--timeout-ms" => opts.timeout_ms = Some(parse_or_usage(args.next())),
            "--hub-addr" => opts.hub_addr = Some(args.next().unwrap_or_else(|| usage())),
            "--json" => opts.json = true,
            "--trace-out" => opts.trace_out = Some(args.next().unwrap_or_else(|| usage())),
            "--checkpoint-dir" => {
                opts.checkpoint_dir = Some(args.next().unwrap_or_else(|| usage()));
            }
            "--checkpoint-interval" => opts.checkpoint_interval = Some(parse_or_usage(args.next())),
            "--help" | "-h" => usage(),
            other if opts.input.is_empty() && !other.starts_with("--") => {
                opts.input = other.to_string();
            }
            _ => usage(),
        }
    }
    if opts.input.is_empty() {
        usage();
    }
    opts
}

/// `--hub-addr` / `NETDECOMP_HUB_ADDR` accepts the canonical
/// `unix:PATH` / `tcp:HOST:PORT` forms, plus bare `HOST:PORT` as TCP
/// shorthand (the form most users will reach for on a real network).
fn parse_hub_addr(raw: &str) -> Result<HubAddr, String> {
    raw.parse::<HubAddr>()
        .or_else(|first| format!("tcp:{raw}").parse::<HubAddr>().map_err(|_| first))
}

fn parse_or_usage<T: std::str::FromStr>(raw: Option<String>) -> T {
    raw.and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
}

/// Minimal JSON string escaping for `--json` output (no serializer dep).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn read_graph(path: &str) -> Result<Graph, Box<dyn std::error::Error>> {
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf)?;
        buf
    } else {
        std::fs::read_to_string(path)?
    };
    Ok(io::from_edge_list(&text)?)
}

/// Max-id flood: every node converges to the maximum vertex id of its
/// connected component. Deterministic and chatty — enough to exercise
/// every shard link of the fabric every round.
#[derive(Debug, Clone, PartialEq)]
struct Flood {
    best: u64,
}

impl Protocol for Flood {
    fn start(&mut self, _ctx: &Ctx<'_>, out: &mut Outbox) {
        out.broadcast(Bytes::from(self.best.to_le_bytes().to_vec()));
    }

    fn round(&mut self, _ctx: &Ctx<'_>, incoming: Inbox<'_>, out: &mut Outbox) {
        let mut grew = false;
        for msg in incoming.iter() {
            let bytes: [u8; 8] = match msg.payload().as_slice().try_into() {
                Ok(b) => b,
                Err(_) => continue,
            };
            let heard = u64::from_le_bytes(bytes);
            if heard > self.best {
                self.best = heard;
                grew = true;
            }
        }
        if grew {
            out.broadcast(Bytes::from(self.best.to_le_bytes().to_vec()));
        }
    }
}

impl Snapshot for Flood {
    fn save_state(&self) -> Bytes {
        Bytes::from(self.best.to_le_bytes().to_vec())
    }

    fn load_state(&mut self, bytes: &[u8]) -> bool {
        let Ok(raw) = <[u8; 8]>::try_from(bytes) else {
            return false;
        };
        self.best = u64::from_le_bytes(raw);
        true
    }
}

/// FNV-1a over a shard's flood states, the worker's one-frame proof of
/// what it computed (the parent recomputes it sequentially).
fn digest_bests(bests: impl Iterator<Item = u64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for best in bests {
        for byte in best.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn flood_digest(nodes: &[Flood]) -> u64 {
    digest_bests(nodes.iter().map(|n| n.best))
}

/// Per-shard chaos schedule parsed from the `NETDECOMP_CHAOS_*` hooks.
#[derive(Debug, Clone, Copy, Default)]
struct ChaosPlan {
    crash_at: Option<u64>,
    wedge_at: Option<u64>,
    slow_ms: u64,
}

/// Parses a `"<shard>:<round>"` hook, returning the round if it names
/// this shard.
fn chaos_round(var: &str, shard: usize) -> Option<u64> {
    let raw = std::env::var(var).ok()?;
    let (s, r) = raw.split_once(':')?;
    if s.trim().parse::<usize>().ok()? != shard {
        return None;
    }
    r.trim().parse::<u64>().ok()
}

impl ChaosPlan {
    fn from_env(shard: usize) -> ChaosPlan {
        ChaosPlan {
            crash_at: chaos_round("NETDECOMP_CHAOS_CRASH", shard),
            wedge_at: chaos_round("NETDECOMP_CHAOS_WEDGE", shard),
            slow_ms: std::env::var("NETDECOMP_CHAOS_SLOW_MS")
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(0),
        }
    }
}

/// [`Flood`] plus the worker-side chaos hooks. Exactly one node per
/// worker — the carrier, the first one built — counts rounds and fires
/// the schedule, so a crash or wedge happens once per shard, mid-compute
/// of a deterministic round (after earlier rounds committed, before this
/// round ships — the worst spot for the replay log).
struct ChaosFlood {
    inner: Flood,
    carrier: bool,
    round: u64,
    plan: ChaosPlan,
}

impl ChaosFlood {
    fn chaos(&self, round: u64) {
        if !self.carrier {
            return;
        }
        if self.plan.slow_ms > 0 {
            std::thread::sleep(Duration::from_millis(self.plan.slow_ms));
        }
        if self.plan.wedge_at == Some(round) {
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
        if self.plan.crash_at == Some(round) {
            // SIGKILL-grade: no shutdown frame, no unwinding, the exit
            // code a kill -9 reaps as.
            std::process::exit(137);
        }
    }
}

/// Only the protocol state checkpoints: the chaos schedule is
/// configuration (and a relaunched worker runs with the one-shot hooks
/// stripped anyway), so a restored carrier simply stops counting.
impl Snapshot for ChaosFlood {
    fn save_state(&self) -> Bytes {
        self.inner.save_state()
    }

    fn load_state(&mut self, bytes: &[u8]) -> bool {
        self.inner.load_state(bytes)
    }
}

impl Protocol for ChaosFlood {
    fn start(&mut self, ctx: &Ctx<'_>, out: &mut Outbox) {
        self.chaos(0);
        self.inner.start(ctx, out);
    }

    fn round(&mut self, ctx: &Ctx<'_>, incoming: Inbox<'_>, out: &mut Outbox) {
        self.round += 1;
        self.chaos(self.round);
        self.inner.round(ctx, incoming, out);
    }
}

fn env_number(name: &str) -> Result<usize, Box<dyn std::error::Error>> {
    Ok(std::env::var(name)
        .map_err(|_| format!("worker mode needs {name}"))?
        .parse::<usize>()
        .map_err(|_| format!("{name} must be a number"))?)
}

/// `--worker`: one shard of a `--distributed` run, configured entirely
/// through the launcher's environment variables. Streams its round
/// count, result digest, and [`RunStats`] to the hub as a `Stats` frame
/// before the shutdown (stdout is only a human-readable echo).
fn worker_main(graph: &Graph) -> Result<(), Box<dyn std::error::Error>> {
    let shard = env_number(launcher::ENV_SHARD)?;
    let shards = env_number(launcher::ENV_SHARDS)?;
    let rounds = env_number(launcher::ENV_ROUNDS)?;
    let addr: HubAddr = std::env::var(launcher::ENV_ADDR)
        .map_err(|_| format!("worker mode needs {}", launcher::ENV_ADDR))?
        .parse()?;
    let digest = graph_digest(graph);
    // The checkpoint must be loaded *before* the handshake — the resume
    // round rides in the Hello frame. A stale claim (fresh hub after a
    // whole-run restart) is granted round 0 instead; reconcile discards
    // the restored state and the run recomputes from scratch.
    let mut plan = CheckpointPlan::from_env(shard, shards, digest, rounds);
    let (client, granted) = HubClient::connect_resuming(
        &addr,
        shard,
        shards,
        digest,
        frame_timeout(),
        plan.resume_round(),
    )?;
    plan.reconcile(granted);
    if std::env::var("NETDECOMP_WORKER_ABORT").ok() == Some(shard.to_string()) {
        // Fault hook: die after the handshake without a shutdown frame,
        // exactly like a crashed worker. Peers must get a typed error.
        std::process::exit(42);
    }
    let heartbeat_ms: u64 = std::env::var(launcher::ENV_HEARTBEAT)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);
    if heartbeat_ms > 0 {
        client.start_heartbeats(Duration::from_millis(heartbeat_ms));
    }
    let config = WorkerConfig {
        shard,
        shards,
        rounds,
        limit: CongestLimit::Unlimited,
    };
    let chaos = ChaosPlan::from_env(shard);
    let mut first = true;
    let (report, nodes) = run_worker_checkpointed(
        graph,
        &client,
        &config,
        plan,
        |id, _ctx| ChaosFlood {
            inner: Flood { best: id as u64 },
            carrier: std::mem::take(&mut first),
            round: 0,
            plan: chaos,
        },
        |nodes| digest_bests(nodes.iter().map(|n| n.inner.best)),
    )?;
    println!(
        "worker {shard} digest {:016x}",
        digest_bests(nodes.iter().map(|n| n.inner.best))
    );
    eprintln!(
        "worker {shard}: {} rounds, {} messages",
        report.rounds_run, report.stats.total_messages
    );
    Ok(())
}

/// `--distributed N`: supervise one `--worker` process per shard against
/// a socket hub — crashed or wedged workers are relaunched and replayed
/// — then cross-check every worker's `Stats`-frame digest against the
/// in-process sequential engine.
fn distributed_main(opts: &Options, graph: &Graph) -> Result<(), Box<dyn std::error::Error>> {
    if opts.input == "-" {
        return Err("--distributed needs a graph file workers can re-read (not stdin)".into());
    }
    let shards = opts.distributed;
    let input = std::fs::canonicalize(&opts.input)?;
    let mut options = launcher::SuperviseOptions::new(shards);
    options.graph_digest = Some(graph_digest(graph));
    options.max_restarts = opts.max_restarts;
    options.heartbeat = Duration::from_millis(opts.heartbeat_ms.max(1));
    options.backoff_seed = opts.seed;
    if let Some(raw) = &opts.hub_addr {
        options.addr = Some(parse_hub_addr(raw)?);
    }
    if let Some((shard, round)) = std::env::var("NETDECOMP_CHAOS_KILL").ok().and_then(|raw| {
        let (s, r) = raw.split_once(':')?;
        Some((s.trim().parse().ok()?, r.trim().parse().ok()?))
    }) {
        options.kill_at = Some((shard, round));
    }
    // Checkpointing: with an interval set (flag or environment) every
    // worker checkpoints its shard each interval rounds. A directory is
    // provisioned under the temp dir when none was named; an explicit
    // one is created if missing and kept afterwards.
    let ckpt_interval = checkpoint_interval();
    let provisioned = ckpt_interval > 0 && checkpoint_dir().is_none();
    let ckpt_dir = if ckpt_interval > 0 {
        let dir = checkpoint_dir().unwrap_or_else(|| {
            std::env::temp_dir().join(format!("netdecomp-ckpt-{}", std::process::id()))
        });
        std::fs::create_dir_all(&dir)?;
        Some(dir)
    } else {
        None
    };
    let exe = std::env::current_exe()?;
    let report = launcher::supervise(&options, |shard, addr, attempt| {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg(&input)
            .arg("--worker")
            .env(launcher::ENV_SHARD, shard.to_string())
            .env(launcher::ENV_SHARDS, shards.to_string())
            .env(launcher::ENV_ROUNDS, opts.rounds.to_string())
            .env(launcher::ENV_ADDR, addr.to_string())
            .env(
                launcher::ENV_TIMEOUT,
                frame_timeout().as_millis().to_string(),
            )
            .env(launcher::ENV_HEARTBEAT, opts.heartbeat_ms.to_string())
            .env(launcher::ENV_REPLAY_WINDOW, replay_window().to_string())
            // Trace plane: the relaunch generation each worker stamps
            // into its RoundTrace records.
            .env(launcher::ENV_ATTEMPT, attempt.to_string())
            // Results travel as Stats frames; nobody drains worker pipes
            // under supervision, so don't create any.
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null());
        if let Some(dir) = &ckpt_dir {
            cmd.env(launcher::ENV_CHECKPOINT_DIR, dir)
                .env(launcher::ENV_CHECKPOINT_INTERVAL, ckpt_interval.to_string());
        }
        if attempt > 0 {
            // One-shot chaos: a relaunched worker runs clean, so the
            // crash/wedge it is recovering from cannot recur forever.
            for hook in ["NETDECOMP_CHAOS_CRASH", "NETDECOMP_CHAOS_WEDGE"] {
                cmd.env_remove(hook);
            }
        }
        cmd.spawn()
    })?;

    // Reference run: the same flood on the in-process sequential engine,
    // digested per worker shard range.
    let mut reference = Simulator::new(graph, |id, _ctx| Flood { best: id as u64 });
    reference.run_rounds(opts.rounds)?;
    let plan = ShardPlan::degree_balanced(graph, shards);
    let mut all_match = true;
    let mut merged = RunStats::default();
    let mut workers_json = Vec::with_capacity(shards);
    for shard in 0..shards {
        let expected = flood_digest(&reference.nodes()[plan.range(shard)]);
        let received = report.worker_stats.get(shard).and_then(Option::as_ref);
        let matched = received.is_some_and(|ws| ws.result_digest == expected);
        all_match &= matched;
        if let Some(ws) = received {
            merged.merge(&ws.stats);
        }
        let restarts = report.restarts.get(shard).copied().unwrap_or(0);
        if opts.json {
            workers_json.push(format!(
                "{{\"shard\":{shard},\"rounds_run\":{},\"digest\":{},\
                 \"expected_digest\":\"{expected:016x}\",\"matched\":{matched},\
                 \"restarts\":{restarts}}}",
                received.map_or(0, |ws| ws.rounds_run),
                received.map_or("null".into(), |ws| format!("\"{:016x}\"", ws.result_digest)),
            ));
        } else {
            println!(
                "worker {shard}: rounds {} digest {} (expected {expected:016x}) restarts {restarts}",
                received.map_or(0, |ws| ws.rounds_run),
                received.map_or("missing".into(), |ws| format!("{:016x}", ws.result_digest)),
            );
        }
    }
    if opts.json {
        // One machine-readable object on stdout; the prose above is the
        // default precisely because existing harnesses grep for it.
        println!(
            "{{\"type\":\"distributed_summary\",\"shards\":{shards},\"vertices\":{},\
             \"rounds\":{},\"matches_sequential\":{all_match},\"workers\":[{}],\
             \"recovery\":{{\"workers_restarted\":{},\"rounds_replayed\":{},\
             \"heartbeats_missed\":{},\"full_run_restarts\":{},\
             \"checkpoint_restores\":{}}},\
             \"stats\":{{\"rounds\":{},\"total_messages\":{},\"total_bytes\":{},\
             \"max_edge_bytes\":{}}},\"trace_out\":{}}}",
            graph.vertex_count(),
            opts.rounds,
            workers_json.join(","),
            report.workers_restarted,
            report.rounds_replayed,
            report.heartbeats_missed,
            report.full_run_restarts,
            report.checkpoint_restores,
            merged.rounds,
            merged.total_messages,
            merged.total_bytes,
            merged.max_edge_bytes,
            netdecomp::sim::trace_out()
                .map_or("null".into(), |p| json_str(&p.display().to_string())),
        );
    } else {
        println!(
            "recovery: readmissions={} rounds_replayed={} heartbeats_missed={} \
             full_run_restarts={} checkpoint_restores={}",
            report.workers_restarted,
            report.rounds_replayed,
            report.heartbeats_missed,
            report.full_run_restarts,
            report.checkpoint_restores
        );
        println!(
            "distributed: {shards} workers over {} vertices, rounds={}, {} messages, \
             matches sequential: {all_match}",
            graph.vertex_count(),
            opts.rounds,
            merged.total_messages
        );
        if let Some(path) = netdecomp::sim::trace_out() {
            println!("flight recorder: {}", path.display());
        }
    }
    if !all_match {
        return Err("distributed run diverged from the sequential engine".into());
    }
    if provisioned {
        // Our temp checkpoint dir served its run; an explicitly named
        // one (or any dir after a failure) is left for forensics.
        if let Some(dir) = &ckpt_dir {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = parse_args();
    if let Some(ms) = opts.timeout_ms {
        if ms == 0 {
            return Err("--timeout-ms must be positive".into());
        }
        // Pin the fabric timeout for this invocation; the supervisor's
        // spawn closure forwards it to every worker via ENV_TIMEOUT.
        std::env::set_var("NETDECOMP_FRAME_TIMEOUT_MS", ms.to_string());
    }
    if let Some(path) = &opts.trace_out {
        // Enable the trace plane for this process and (via inherited
        // environment) every worker it spawns; the supervisor dumps the
        // flight recording here on completion or failure.
        std::env::set_var("NETDECOMP_TRACE_OUT", path);
        std::env::set_var("NETDECOMP_TRACE", "1");
    }
    // Checkpoint knobs pin the environment the same way --timeout-ms
    // does, so the supervisor and every worker it spawns agree.
    if let Some(n) = opts.checkpoint_interval {
        std::env::set_var(launcher::ENV_CHECKPOINT_INTERVAL, n.to_string());
    }
    if let Some(dir) = &opts.checkpoint_dir {
        std::env::set_var(launcher::ENV_CHECKPOINT_DIR, dir);
    }
    let graph = read_graph(&opts.input)?;
    if opts.worker {
        return worker_main(&graph);
    }
    if opts.distributed > 0 {
        return distributed_main(&opts, &graph);
    }
    let n = graph.vertex_count();
    let k = if opts.k == 0 {
        ((n.max(2) as f64).ln().ceil() as usize).max(2)
    } else {
        opts.k
    };

    let (decomposition, label): (NetworkDecomposition, String) = match opts.algo.as_str() {
        "basic" => {
            let c = if opts.c > 0.0 { opts.c } else { 4.0 };
            let p = params::DecompositionParams::new(k, c)?;
            let o = basic::decompose(&graph, &p, opts.seed)?;
            let label = format!(
                "basic (Theorem 1): k={k} c={c} bound D<=2k-2={} events={}",
                p.diameter_bound(),
                o.events().truncation_events
            );
            (o.into_decomposition(), label)
        }
        "staged" => {
            let c = if opts.c > 0.0 { opts.c } else { 6.0 };
            let p = params::StagedParams::new(k, c)?;
            let o = staged::decompose(&graph, &p, opts.seed)?;
            let label = format!(
                "staged (Theorem 2): k={k} c={c} bound D<=2k-2={} color bound {}",
                p.diameter_bound(),
                p.color_bound(n)
            );
            (o.into_decomposition(), label)
        }
        "high-radius" => {
            let c = if opts.c > 0.0 { opts.c } else { 4.0 };
            let p = params::HighRadiusParams::new(opts.lambda, c)?;
            let o = high_radius::decompose(&graph, &p, opts.seed)?;
            let label = format!(
                "high-radius (Theorem 3): lambda={} c={c} bound D<={}",
                opts.lambda,
                p.diameter_bound(n)
            );
            (o.into_decomposition(), label)
        }
        "ls93" => {
            let c = if opts.c > 0.0 { opts.c } else { 4.0 };
            let p = linial_saks::LinialSaksParams::new(k, c)?;
            let o = linial_saks::decompose(&graph, &p, opts.seed)?;
            let label = format!(
                "linial-saks (weak baseline): k={k} c={c} weak bound D<={}",
                p.weak_diameter_bound()
            );
            (o.decomposition, label)
        }
        other => {
            eprintln!("unknown algorithm `{other}`");
            usage();
        }
    };

    let report = verify::verify(&graph, &decomposition)?;
    if opts.json {
        println!(
            "{{\"type\":\"verify_report\",\"algorithm\":{},\"n\":{n},\"m\":{},\
             \"clusters\":{},\"colors\":{},\"complete\":{},\"clusters_connected\":{},\
             \"max_strong_diameter\":{},\"max_weak_diameter\":{},\
             \"supergraph_properly_colored\":{}}}",
            json_str(&label),
            graph.edge_count(),
            report.cluster_count,
            report.color_count,
            report.complete,
            report.clusters_connected,
            report
                .max_strong_diameter
                .map_or("null".into(), |d| d.to_string()),
            report
                .max_weak_diameter
                .map_or("null".into(), |d| d.to_string()),
            report.supergraph_properly_colored
        );
        if opts.assignment {
            for v in 0..n {
                let c = decomposition.cluster_of(v);
                let b = decomposition.block_of(v);
                println!(
                    "{{\"type\":\"assignment\",\"vertex\":{v},\"cluster\":{},\"color\":{}}}",
                    c.map_or("null".into(), |x| x.to_string()),
                    b.map_or("null".into(), |x| x.to_string())
                );
            }
        }
        return Ok(());
    }
    println!("algorithm: {label}");
    println!("graph: n={} m={}", n, graph.edge_count());
    println!(
        "clusters: {}  colors: {}  complete: {}  connected: {}",
        report.cluster_count, report.color_count, report.complete, report.clusters_connected
    );
    println!(
        "max strong diameter: {}  max weak diameter: {}  proper: {}",
        report
            .max_strong_diameter
            .map_or("inf".into(), |d| d.to_string()),
        report
            .max_weak_diameter
            .map_or("inf".into(), |d| d.to_string()),
        report.supergraph_properly_colored
    );
    if opts.assignment {
        println!("# vertex cluster color");
        for v in 0..n {
            let c = decomposition.cluster_of(v);
            let b = decomposition.block_of(v);
            println!(
                "{v} {} {}",
                c.map_or(-1i64, |x| x as i64),
                b.map_or(-1i64, |x| x as i64)
            );
        }
    }
    Ok(())
}

//! Command-line interface: decompose a graph given as an edge-list file.
//!
//! ```text
//! netdecomp <file|-> [--algo basic|staged|high-radius|ls93] [--k K] [--c C]
//!           [--lambda L] [--seed S] [--assignment]
//! ```
//!
//! The input format is the crate's edge-list text (`n m` header then one
//! `u v` pair per line, `#` comments allowed); `-` reads stdin. Prints the
//! verification report; with `--assignment`, also one `vertex cluster
//! color` triple per line.

use std::io::Read as _;

use netdecomp::baselines::linial_saks;
use netdecomp::core::{basic, high_radius, params, staged, verify, NetworkDecomposition};
use netdecomp::graph::{io, Graph};

struct Options {
    input: String,
    algo: String,
    k: usize,
    c: f64,
    lambda: usize,
    seed: u64,
    assignment: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: netdecomp <file|-> [--algo basic|staged|high-radius|ls93] \
         [--k K] [--c C] [--lambda L] [--seed S] [--assignment]"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut opts = Options {
        input: String::new(),
        algo: "basic".into(),
        k: 0, // 0 = derive from n
        c: 0.0,
        lambda: 3,
        seed: 0,
        assignment: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--algo" => opts.algo = args.next().unwrap_or_else(|| usage()),
            "--k" => opts.k = parse_or_usage(args.next()),
            "--c" => opts.c = parse_or_usage(args.next()),
            "--lambda" => opts.lambda = parse_or_usage(args.next()),
            "--seed" => opts.seed = parse_or_usage(args.next()),
            "--assignment" => opts.assignment = true,
            "--help" | "-h" => usage(),
            other if opts.input.is_empty() && !other.starts_with("--") => {
                opts.input = other.to_string();
            }
            _ => usage(),
        }
    }
    if opts.input.is_empty() {
        usage();
    }
    opts
}

fn parse_or_usage<T: std::str::FromStr>(raw: Option<String>) -> T {
    raw.and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
}

fn read_graph(path: &str) -> Result<Graph, Box<dyn std::error::Error>> {
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf)?;
        buf
    } else {
        std::fs::read_to_string(path)?
    };
    Ok(io::from_edge_list(&text)?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = parse_args();
    let graph = read_graph(&opts.input)?;
    let n = graph.vertex_count();
    let k = if opts.k == 0 {
        ((n.max(2) as f64).ln().ceil() as usize).max(2)
    } else {
        opts.k
    };

    let (decomposition, label): (NetworkDecomposition, String) = match opts.algo.as_str() {
        "basic" => {
            let c = if opts.c > 0.0 { opts.c } else { 4.0 };
            let p = params::DecompositionParams::new(k, c)?;
            let o = basic::decompose(&graph, &p, opts.seed)?;
            let label = format!(
                "basic (Theorem 1): k={k} c={c} bound D<=2k-2={} events={}",
                p.diameter_bound(),
                o.events().truncation_events
            );
            (o.into_decomposition(), label)
        }
        "staged" => {
            let c = if opts.c > 0.0 { opts.c } else { 6.0 };
            let p = params::StagedParams::new(k, c)?;
            let o = staged::decompose(&graph, &p, opts.seed)?;
            let label = format!(
                "staged (Theorem 2): k={k} c={c} bound D<=2k-2={} color bound {}",
                p.diameter_bound(),
                p.color_bound(n)
            );
            (o.into_decomposition(), label)
        }
        "high-radius" => {
            let c = if opts.c > 0.0 { opts.c } else { 4.0 };
            let p = params::HighRadiusParams::new(opts.lambda, c)?;
            let o = high_radius::decompose(&graph, &p, opts.seed)?;
            let label = format!(
                "high-radius (Theorem 3): lambda={} c={c} bound D<={}",
                opts.lambda,
                p.diameter_bound(n)
            );
            (o.into_decomposition(), label)
        }
        "ls93" => {
            let c = if opts.c > 0.0 { opts.c } else { 4.0 };
            let p = linial_saks::LinialSaksParams::new(k, c)?;
            let o = linial_saks::decompose(&graph, &p, opts.seed)?;
            let label = format!(
                "linial-saks (weak baseline): k={k} c={c} weak bound D<={}",
                p.weak_diameter_bound()
            );
            (o.decomposition, label)
        }
        other => {
            eprintln!("unknown algorithm `{other}`");
            usage();
        }
    };

    let report = verify::verify(&graph, &decomposition)?;
    println!("algorithm: {label}");
    println!("graph: n={} m={}", n, graph.edge_count());
    println!(
        "clusters: {}  colors: {}  complete: {}  connected: {}",
        report.cluster_count, report.color_count, report.complete, report.clusters_connected
    );
    println!(
        "max strong diameter: {}  max weak diameter: {}  proper: {}",
        report
            .max_strong_diameter
            .map_or("inf".into(), |d| d.to_string()),
        report
            .max_weak_diameter
            .map_or("inf".into(), |d| d.to_string()),
        report.supergraph_properly_colored
    );
    if opts.assignment {
        println!("# vertex cluster color");
        for v in 0..n {
            let c = decomposition.cluster_of(v);
            let b = decomposition.block_of(v);
            println!(
                "{v} {} {}",
                c.map_or(-1i64, |x| x as i64),
                b.map_or(-1i64, |x| x as i64)
            );
        }
    }
    Ok(())
}

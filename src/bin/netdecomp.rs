//! Command-line interface: decompose a graph given as an edge-list file.
//!
//! ```text
//! netdecomp <file|-> [--algo basic|staged|high-radius|ls93] [--k K] [--c C]
//!           [--lambda L] [--seed S] [--assignment]
//! netdecomp <file> --distributed N [--rounds R]
//! netdecomp <file> --worker            # spawned by --distributed
//! ```
//!
//! The input format is the crate's edge-list text (`n m` header then one
//! `u v` pair per line, `#` comments allowed); `-` reads stdin. Prints the
//! verification report; with `--assignment`, also one `vertex cluster
//! color` triple per line.
//!
//! `--distributed N` exercises the process-per-shard fabric: it binds a
//! socket hub, re-launches this binary `N` times in `--worker` mode (one
//! OS process per shard, connected only by the hub socket), runs a
//! max-id flood over the graph, and cross-checks every worker's final
//! shard states against the in-process sequential engine. A worker finds
//! its shard, fabric size, hub address, and round budget in the
//! environment variables named by [`launcher`]'s `ENV_*` constants; a
//! worker whose shard index equals `NETDECOMP_WORKER_ABORT` connects and
//! then dies without a word — the fault hook the robustness tests use to
//! prove a killed shard surfaces as a typed error, never a hang.

use std::io::Read as _;

use bytes::Bytes;
use netdecomp::baselines::linial_saks;
use netdecomp::core::{basic, high_radius, params, staged, verify, NetworkDecomposition};
use netdecomp::graph::{io, Graph};
use netdecomp::sim::transport::{launcher, run_worker, WorkerConfig};
use netdecomp::sim::{
    frame_timeout, graph_digest, CongestLimit, Ctx, HubAddr, HubClient, Inbox, Outbox, Protocol,
    ShardPlan, Simulator,
};

struct Options {
    input: String,
    algo: String,
    k: usize,
    c: f64,
    lambda: usize,
    seed: u64,
    assignment: bool,
    worker: bool,
    distributed: usize,
    rounds: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: netdecomp <file|-> [--algo basic|staged|high-radius|ls93] \
         [--k K] [--c C] [--lambda L] [--seed S] [--assignment]\n\
         \x20      netdecomp <file> --distributed N [--rounds R]"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut opts = Options {
        input: String::new(),
        algo: "basic".into(),
        k: 0, // 0 = derive from n
        c: 0.0,
        lambda: 3,
        seed: 0,
        assignment: false,
        worker: false,
        distributed: 0,
        rounds: 16,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--algo" => opts.algo = args.next().unwrap_or_else(|| usage()),
            "--k" => opts.k = parse_or_usage(args.next()),
            "--c" => opts.c = parse_or_usage(args.next()),
            "--lambda" => opts.lambda = parse_or_usage(args.next()),
            "--seed" => opts.seed = parse_or_usage(args.next()),
            "--assignment" => opts.assignment = true,
            "--worker" => opts.worker = true,
            "--distributed" => opts.distributed = parse_or_usage(args.next()),
            "--rounds" => opts.rounds = parse_or_usage(args.next()),
            "--help" | "-h" => usage(),
            other if opts.input.is_empty() && !other.starts_with("--") => {
                opts.input = other.to_string();
            }
            _ => usage(),
        }
    }
    if opts.input.is_empty() {
        usage();
    }
    opts
}

fn parse_or_usage<T: std::str::FromStr>(raw: Option<String>) -> T {
    raw.and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
}

fn read_graph(path: &str) -> Result<Graph, Box<dyn std::error::Error>> {
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf)?;
        buf
    } else {
        std::fs::read_to_string(path)?
    };
    Ok(io::from_edge_list(&text)?)
}

/// Max-id flood: every node converges to the maximum vertex id of its
/// connected component. Deterministic and chatty — enough to exercise
/// every shard link of the fabric every round.
#[derive(Debug, Clone, PartialEq)]
struct Flood {
    best: u64,
}

impl Protocol for Flood {
    fn start(&mut self, _ctx: &Ctx<'_>, out: &mut Outbox) {
        out.broadcast(Bytes::from(self.best.to_le_bytes().to_vec()));
    }

    fn round(&mut self, _ctx: &Ctx<'_>, incoming: Inbox<'_>, out: &mut Outbox) {
        let mut grew = false;
        for msg in incoming.iter() {
            let bytes: [u8; 8] = match msg.payload().as_slice().try_into() {
                Ok(b) => b,
                Err(_) => continue,
            };
            let heard = u64::from_le_bytes(bytes);
            if heard > self.best {
                self.best = heard;
                grew = true;
            }
        }
        if grew {
            out.broadcast(Bytes::from(self.best.to_le_bytes().to_vec()));
        }
    }
}

/// FNV-1a over the flood states of `nodes`, the worker's one-line proof
/// of what it computed (the parent recomputes it sequentially).
fn flood_digest(nodes: &[Flood]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for node in nodes {
        for byte in node.best.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn env_number(name: &str) -> Result<usize, Box<dyn std::error::Error>> {
    Ok(std::env::var(name)
        .map_err(|_| format!("worker mode needs {name}"))?
        .parse::<usize>()
        .map_err(|_| format!("{name} must be a number"))?)
}

/// `--worker`: one shard of a `--distributed` run, configured entirely
/// through the launcher's environment variables. Prints
/// `worker <shard> digest <hex>` on success.
fn worker_main(graph: &Graph) -> Result<(), Box<dyn std::error::Error>> {
    let shard = env_number(launcher::ENV_SHARD)?;
    let shards = env_number(launcher::ENV_SHARDS)?;
    let rounds = env_number(launcher::ENV_ROUNDS)?;
    let addr: HubAddr = std::env::var(launcher::ENV_ADDR)
        .map_err(|_| format!("worker mode needs {}", launcher::ENV_ADDR))?
        .parse()?;
    let client = HubClient::connect(&addr, shard, shards, graph_digest(graph), frame_timeout())?;
    if std::env::var("NETDECOMP_WORKER_ABORT").ok() == Some(shard.to_string()) {
        // Fault hook: die after the handshake without a shutdown frame,
        // exactly like a crashed worker. Peers must get a typed error.
        std::process::exit(42);
    }
    let config = WorkerConfig {
        shard,
        shards,
        rounds,
        limit: CongestLimit::Unlimited,
    };
    let (report, nodes) = run_worker(graph, &client, &config, |id, _ctx| Flood {
        best: id as u64,
    })?;
    println!("worker {shard} digest {:016x}", flood_digest(&nodes));
    eprintln!(
        "worker {shard}: {} rounds, {} messages",
        report.rounds_run, report.stats.total_messages
    );
    Ok(())
}

/// `--distributed N`: launch one `--worker` process per shard against a
/// temp-socket hub, then cross-check every worker's digest against the
/// in-process sequential engine.
fn distributed_main(opts: &Options, graph: &Graph) -> Result<(), Box<dyn std::error::Error>> {
    if opts.input == "-" {
        return Err("--distributed needs a graph file workers can re-read (not stdin)".into());
    }
    let shards = opts.distributed;
    let input = std::fs::canonicalize(&opts.input)?;
    let mut options = launcher::LaunchOptions::new(shards);
    options.graph_digest = Some(graph_digest(graph));
    let exe = std::env::current_exe()?;
    let report = launcher::launch(&options, |shard, addr| {
        std::process::Command::new(&exe)
            .arg(&input)
            .arg("--worker")
            .env(launcher::ENV_SHARD, shard.to_string())
            .env(launcher::ENV_SHARDS, shards.to_string())
            .env(launcher::ENV_ROUNDS, opts.rounds.to_string())
            .env(launcher::ENV_ADDR, addr.to_string())
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::piped())
            .spawn()
    })?;

    // Reference run: the same flood on the in-process sequential engine,
    // digested per worker shard range.
    let mut reference = Simulator::new(graph, |id, _ctx| Flood { best: id as u64 });
    reference.run_rounds(opts.rounds)?;
    let plan = ShardPlan::degree_balanced(graph, shards);
    let mut all_match = true;
    for exit in &report.exits {
        let range = plan.range(exit.shard);
        let expected = flood_digest(&reference.nodes()[range]);
        let stdout = String::from_utf8_lossy(&exit.stdout);
        let printed = stdout
            .lines()
            .find_map(|line| line.strip_prefix(&format!("worker {} digest ", exit.shard)))
            .and_then(|hex| u64::from_str_radix(hex.trim(), 16).ok());
        let matched = printed == Some(expected);
        all_match &= matched;
        println!(
            "worker {}: exit {:?} digest {} (expected {expected:016x})",
            exit.shard,
            exit.code,
            printed.map_or("missing".into(), |d| format!("{d:016x}")),
        );
        if !matched {
            eprintln!("{}", String::from_utf8_lossy(&exit.stderr));
        }
    }
    println!(
        "distributed: {shards} workers over {} vertices, rounds={}, matches sequential: {all_match}",
        graph.vertex_count(),
        opts.rounds
    );
    if !all_match {
        return Err("distributed run diverged from the sequential engine".into());
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = parse_args();
    let graph = read_graph(&opts.input)?;
    if opts.worker {
        return worker_main(&graph);
    }
    if opts.distributed > 0 {
        return distributed_main(&opts, &graph);
    }
    let n = graph.vertex_count();
    let k = if opts.k == 0 {
        ((n.max(2) as f64).ln().ceil() as usize).max(2)
    } else {
        opts.k
    };

    let (decomposition, label): (NetworkDecomposition, String) = match opts.algo.as_str() {
        "basic" => {
            let c = if opts.c > 0.0 { opts.c } else { 4.0 };
            let p = params::DecompositionParams::new(k, c)?;
            let o = basic::decompose(&graph, &p, opts.seed)?;
            let label = format!(
                "basic (Theorem 1): k={k} c={c} bound D<=2k-2={} events={}",
                p.diameter_bound(),
                o.events().truncation_events
            );
            (o.into_decomposition(), label)
        }
        "staged" => {
            let c = if opts.c > 0.0 { opts.c } else { 6.0 };
            let p = params::StagedParams::new(k, c)?;
            let o = staged::decompose(&graph, &p, opts.seed)?;
            let label = format!(
                "staged (Theorem 2): k={k} c={c} bound D<=2k-2={} color bound {}",
                p.diameter_bound(),
                p.color_bound(n)
            );
            (o.into_decomposition(), label)
        }
        "high-radius" => {
            let c = if opts.c > 0.0 { opts.c } else { 4.0 };
            let p = params::HighRadiusParams::new(opts.lambda, c)?;
            let o = high_radius::decompose(&graph, &p, opts.seed)?;
            let label = format!(
                "high-radius (Theorem 3): lambda={} c={c} bound D<={}",
                opts.lambda,
                p.diameter_bound(n)
            );
            (o.into_decomposition(), label)
        }
        "ls93" => {
            let c = if opts.c > 0.0 { opts.c } else { 4.0 };
            let p = linial_saks::LinialSaksParams::new(k, c)?;
            let o = linial_saks::decompose(&graph, &p, opts.seed)?;
            let label = format!(
                "linial-saks (weak baseline): k={k} c={c} weak bound D<={}",
                p.weak_diameter_bound()
            );
            (o.decomposition, label)
        }
        other => {
            eprintln!("unknown algorithm `{other}`");
            usage();
        }
    };

    let report = verify::verify(&graph, &decomposition)?;
    println!("algorithm: {label}");
    println!("graph: n={} m={}", n, graph.edge_count());
    println!(
        "clusters: {}  colors: {}  complete: {}  connected: {}",
        report.cluster_count, report.color_count, report.complete, report.clusters_connected
    );
    println!(
        "max strong diameter: {}  max weak diameter: {}  proper: {}",
        report
            .max_strong_diameter
            .map_or("inf".into(), |d| d.to_string()),
        report
            .max_weak_diameter
            .map_or("inf".into(), |d| d.to_string()),
        report.supergraph_properly_colored
    );
    if opts.assignment {
        println!("# vertex cluster color");
        for v in 0..n {
            let c = decomposition.cluster_of(v);
            let b = decomposition.block_of(v);
            println!(
                "{v} {} {}",
                c.map_or(-1i64, |x| x as i64),
                b.map_or(-1i64, |x| x as i64)
            );
        }
    }
    Ok(())
}

//! Facade crate for the `netdecomp` workspace: distributed strong-diameter
//! network decomposition (Elkin–Neiman, PODC 2016) with its substrates,
//! baselines, and applications.
//!
//! This crate re-exports the workspace members under stable module names so
//! downstream users need a single dependency:
//!
//! - [`graph`] — CSR graphs, generators, BFS, diameters, contraction.
//! - [`sim`] — synchronous LOCAL/CONGEST round simulator.
//! - [`core`] — the paper's algorithms (Theorems 1–3) and verification.
//! - [`baselines`] — Linial–Saks, MPX13 padded partitions, greedy carving.
//! - [`apps`] — MIS, (Δ+1)-coloring, maximal matching on decompositions.
//!
//! # Quickstart
//!
//! ```
//! use netdecomp::core::{basic, params::DecompositionParams, verify};
//! use netdecomp::graph::generators;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let g = generators::gnp(200, 0.05, &mut rng)?;
//! let params = DecompositionParams::for_graph_size(g.vertex_count());
//! let outcome = basic::decompose(&g, &params, 7)?;
//! let report = verify::verify(&g, outcome.decomposition())?;
//! assert!(report.is_valid_strong(params.diameter_bound()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use netdecomp_apps as apps;
pub use netdecomp_baselines as baselines;
pub use netdecomp_core as core;
pub use netdecomp_graph as graph;
pub use netdecomp_sim as sim;
